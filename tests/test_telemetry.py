"""Telemetry: spans, counters, metrics plane — and the no-interference bar.

The contract under test is the one DESIGN.md states: telemetry is strictly
out-of-band.  A sweep writes the **byte-identical** store with ``--telemetry``
on or off, locally or distributed, even when a worker is SIGKILLed mid-lease;
the hub is a no-op without a sink; event files parse line by line no matter
how their process died; and the live ``metrics`` protocol request serves a
Prometheus-renderable snapshot without joining the fleet.
"""

import json
import time

import pytest

from repro.distrib import SweepCoordinator, connect, worker_process_entry
from repro.engine import ExperimentEngine, ProgramCache, ResultStore
from repro.explore import SweepSpec, execute_sweep
from repro.sim import Simulator
from repro.sim.profiler import BlockProfile
from repro.telemetry import (
    Ewma,
    RateEwma,
    Telemetry,
    configure_telemetry,
    get_telemetry,
    load_events,
    render_prometheus,
    render_trace_stats,
    reset_telemetry,
    trace_stats,
)
from repro.telemetry.metrics import percentile
from test_distrib import SPAWN, TEST_SWEEP, wait_until

#: 2-cell sweep: enough to exercise compile/solve/simulate spans cheaply.
SMALL_SWEEP = SweepSpec(benchmarks=("crc32",), x_limits=(1.1, 1.5))


@pytest.fixture
def clean_hub():
    """Reset the process singleton (and its env propagation) around a test."""
    reset_telemetry(clear_env=True)
    yield get_telemetry()
    reset_telemetry(clear_env=True)


def fresh_engine() -> ExperimentEngine:
    return ExperimentEngine(cache=ProgramCache())


# --------------------------------------------------------------------------- #
# The hub itself
# --------------------------------------------------------------------------- #
def test_disabled_hub_is_a_noop(tmp_path):
    hub = Telemetry()
    with hub.span("compile", benchmark="crc32") as span_id:
        assert span_id is None
    hub.add("cache.compiles")
    hub.set_gauge("coordinator.queue_depth", 7)
    hub.flush()
    assert hub.snapshot() == {"counters": {}, "gauges": {}}
    assert list(tmp_path.iterdir()) == []  # and certainly no event file


def test_span_events_nest_and_counters_flush(tmp_path):
    hub = Telemetry().configure(tmp_path, role="main", propagate=False)
    with hub.span("outer", stage="x"):
        with hub.span("inner"):
            pass
    hub.add("c.a", 2)
    hub.add("c.a")
    hub.set_gauge("g.b", 0.5)
    hub.flush()
    hub.reset()

    events, skipped = load_events(tmp_path)
    assert skipped == 0
    assert events[0]["event"] == "meta" and events[0]["role"] == "main"
    spans = {e["name"]: e for e in events if e["event"] == "span"}
    assert spans["inner"]["parent"] == spans["outer"]["id"]
    assert spans["inner"]["depth"] == 1 and spans["outer"]["depth"] == 0
    assert spans["outer"]["parent"] is None
    assert spans["outer"]["attrs"] == {"stage": "x"}
    assert spans["outer"]["dur"] >= spans["inner"]["dur"] >= 0
    counters = [e for e in events if e["event"] == "counters"]
    assert counters and counters[-1]["counters"] == {"c.a": 3}
    assert counters[-1]["gauges"] == {"g.b": 0.5}


def test_singleton_configures_from_environment(tmp_path, clean_hub,
                                               monkeypatch):
    import repro.telemetry.hub as hub_module
    monkeypatch.setenv(hub_module.TELEMETRY_DIR_ENV, str(tmp_path))
    monkeypatch.setenv(hub_module.TELEMETRY_ROLE_ENV, "worker")
    # Simulate a child process's first get_telemetry(): a fresh instance.
    monkeypatch.setattr(hub_module, "_HUB", None)
    hub = hub_module.get_telemetry()
    try:
        assert hub.enabled and hub.role == "worker"
        with hub.span("lease.roundtrip"):
            pass
        events, _ = load_events(tmp_path)
        assert any(e.get("name") == "lease.roundtrip" for e in events)
    finally:
        hub.reset()


# --------------------------------------------------------------------------- #
# Estimators (pure units, no I/O)
# --------------------------------------------------------------------------- #
def test_ewma_halflife_semantics():
    ewma = Ewma(halflife=10.0)
    assert ewma.value is None
    assert ewma.update(100.0, dt=1.0) == 100.0      # first sample initializes
    # One full half-life later: old estimate keeps exactly half its weight.
    assert ewma.update(0.0, dt=10.0) == pytest.approx(50.0)
    with pytest.raises(ValueError, match="halflife"):
        Ewma(halflife=0.0)


def test_rate_ewma_turns_counts_into_rates():
    rate = RateEwma(halflife=15.0)
    assert rate.rate is None
    rate.observe(5, now=100.0)       # origin only: no interval to rate yet
    assert rate.rate is None
    rate.observe(4, now=102.0)       # 4 events over 2 s
    assert rate.rate == pytest.approx(2.0)
    rate.observe(3, now=102.0)       # dt <= 0 is ignored, not a divide
    assert rate.rate == pytest.approx(2.0)

    # A start= seed makes the very first observation produce a rate — the
    # progress reporter depends on this for its first ETA line.
    seeded = RateEwma(start=0.0)
    seeded.observe(2, now=2.0)
    assert seeded.rate == pytest.approx(1.0)


def test_percentile_is_nearest_rank():
    assert percentile([], 0.5) is None
    assert percentile([3.0], 0.95) == 3.0
    samples = [float(value) for value in range(1, 11)]
    assert percentile(samples, 0.5) == 6.0
    assert percentile(samples, 0.95) == 10.0


def test_render_prometheus_shapes_and_escaping():
    text = render_prometheus({
        "total": 10, "done": 4, "pending": 5, "leased": 1, "leases": 1,
        "workers": 2, "workers_seen": 3, "requeued_batches": 1,
        "reaped_leases": 0, "duplicate_records": 0,
        "throughput": 2.5, "eta_seconds": 2.0,
        "worker_throughput": {'w"1': 1.25},
        "worker_cells": {'w"1': 4},
        "heartbeat_age_seconds": {'w"1': 0.5},
        "lease_latency_seconds": {"0.5": 0.2, "0.95": 0.9},
    })
    assert "# TYPE repro_cells_done counter\nrepro_cells_done 4" in text
    assert "repro_queue_depth 5" in text
    assert 'repro_worker_throughput_cells_per_second{worker="w\\"1"} 1.25' \
        in text
    assert 'repro_lease_latency_seconds{quantile="0.95"} 0.9' in text
    # Every non-comment line is a `name[{labels}] value` sample.
    for line in text.strip().splitlines():
        if not line.startswith("#"):
            float(line.rsplit(" ", 1)[1])
    # None/missing fields are omitted rather than rendered as garbage.
    assert "eta" not in render_prometheus({"total": 1, "eta_seconds": None})


# --------------------------------------------------------------------------- #
# Stats reducer
# --------------------------------------------------------------------------- #
def test_trace_stats_reduces_phases_cells_and_torn_lines(tmp_path):
    hub = Telemetry().configure(tmp_path, role="main", propagate=False)
    with hub.span("cell", benchmark="crc32", opt_level="O2", x_limit=1.1,
                  solver="greedy"):
        with hub.span("compile"):
            time.sleep(0.01)
        with hub.span("simulate"):
            time.sleep(0.01)
    hub.add("cache.compiles", 3)
    hub.reset()  # flushes the counters event and closes the file
    path = next(tmp_path.glob("*.events.jsonl"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event":"span","name":"torn')  # a SIGKILL's tail

    stats = trace_stats(tmp_path)
    assert stats["skipped_lines"] == 1
    assert stats["phases"]["compile"]["count"] == 1
    assert stats["phases"]["simulate"]["total_s"] >= 0.01
    # Exclusive time telescopes: the cell's exclusive part excludes its
    # children, so the phase total never double-counts nested spans.
    cell = stats["phases"]["cell"]
    assert cell["exclusive_s"] <= cell["total_s"] - 0.02 + 1e-6
    assert 0.0 < stats["coverage"] <= 1.0 + 1e-9
    assert stats["counters"] == {"cache.compiles": 3}
    [row] = stats["cells"]
    assert row["phases"]["compile"] >= 0.01

    rendered = render_trace_stats(tmp_path)
    assert "1 torn/undecodable" in rendered
    assert "crc32/O2/1.1 [solver=greedy]" in rendered
    assert "cache.compiles = 3" in rendered


# --------------------------------------------------------------------------- #
# The _finish reconciliation tripwire
# --------------------------------------------------------------------------- #
def test_simulator_finish_rejects_unreconciled_counts():
    program = ProgramCache().get_benchmark("crc32", "O0")
    simulator = Simulator(program)
    counts = {(1, "flash", 1, None): 4}
    with pytest.raises(AssertionError, match="do not reconcile"):
        simulator._finish(10, 5, counts, BlockProfile(), {"flash": 10})
    with pytest.raises(AssertionError, match="cycle buckets"):
        simulator._finish(10, 4, counts, BlockProfile(), {"flash": 9})


# --------------------------------------------------------------------------- #
# Pool cache-stats aggregation (satellite: stats cross the pool)
# --------------------------------------------------------------------------- #
def test_pool_worker_cache_stats_are_merged(clean_hub):
    from repro.engine.engine import ExperimentSpec
    engine = ExperimentEngine(cache=ProgramCache(), max_workers=2)
    specs = [ExperimentSpec(benchmark="crc32", x_limit=x, solver="greedy")
             for x in (1.1, 1.3, 1.5, 2.0)]
    engine.run_grid(specs)
    assert engine.pool_cache_stats  # per-(epoch, pid) snapshots came back
    merged = engine.merged_cache_stats()
    # The parent process never compiled anything itself — every compile
    # happened inside a pool worker and must still show up in the merge.
    assert engine.cache.stats.compiles == 0
    assert merged["compiles"] >= 1
    assert merged["hits"] + merged["misses"] >= len(specs)


# --------------------------------------------------------------------------- #
# Determinism: telemetry never touches results
# --------------------------------------------------------------------------- #
def test_local_sweep_is_byte_identical_with_telemetry(tmp_path, clean_hub):
    plain = ResultStore(tmp_path / "plain")
    execute_sweep(SMALL_SWEEP, store=plain, engine=fresh_engine(),
                  max_workers=1)

    configure_telemetry(tmp_path / "trace", role="main")
    traced = ResultStore(tmp_path / "traced")
    execute_sweep(SMALL_SWEEP, store=traced, engine=fresh_engine(),
                  max_workers=1)
    reset_telemetry(clear_env=True)

    assert traced.path_for("sweep").read_bytes() == \
        plain.path_for("sweep").read_bytes()
    events, skipped = load_events(tmp_path / "trace")
    assert skipped == 0
    names = {e.get("name") for e in events if e.get("event") == "span"}
    assert {"cell", "compile", "placement.solve", "simulate",
            "store.checkpoint"} <= names
    stats = trace_stats(tmp_path / "trace")
    # One simulation per optimized cell plus the shared cached baseline.
    assert stats["counters"].get("sim.runs", 0) >= SMALL_SWEEP.size + 1


def test_distributed_telemetry_sigkill_stays_bitwise(tmp_path, clean_hub):
    mono = ResultStore(tmp_path / "mono")
    execute_sweep(TEST_SWEEP, store=mono, engine=fresh_engine(),
                  max_workers=1)

    # --telemetry on the coordinator propagates to spawned workers via the
    # environment; the fleet then survives a SIGKILLed worker mid-lease.
    trace = tmp_path / "trace"
    configure_telemetry(trace, role="coordinator")
    store = ResultStore(tmp_path / "dist")
    coordinator = SweepCoordinator(TEST_SWEEP, store=store, batch_size=1,
                                   lease_timeout=30.0, checkpoint_every=1)
    coordinator.start()
    victim = replacement = None
    try:
        victim = SPAWN.Process(
            target=worker_process_entry,
            args=(coordinator.host, coordinator.port),
            kwargs={"name": "victim", "throttle": 60.0}, daemon=True)
        victim.start()
        wait_until(lambda: coordinator.stats()["leased"] >= 1,
                   message="victim to take a lease")
        victim.kill()
        victim.join(timeout=30.0)
        wait_until(lambda: coordinator.stats()["requeued_batches"] >= 1,
                   timeout=60.0, message="the victim's lease to be re-queued")
        replacement = SPAWN.Process(
            target=worker_process_entry,
            args=(coordinator.host, coordinator.port),
            kwargs={"name": "replacement"}, daemon=True)
        replacement.start()
        assert coordinator.wait(180.0), "sweep did not finish after re-lease"
        coordinator.summary()
    finally:
        reset_telemetry(clear_env=True)
        coordinator.shutdown()
        for process in (victim, replacement):
            if process is not None:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()

    # Out-of-band: the traced, killed, re-leased distributed store is still
    # byte-identical to the untraced monolithic one.
    assert store.path_for("sweep").read_bytes() == \
        mono_bytes_of(mono)
    # Every per-process event file — including the SIGKILLed victim's
    # partial one — parses line by line, with at most one torn tail each.
    files = sorted(trace.glob("*.events.jsonl"))
    assert len(files) >= 2  # coordinator + at least one worker
    events, skipped = load_events(trace)
    assert skipped <= len(files)
    roles = {e.get("role") for e in events if e.get("event") == "meta"}
    assert {"coordinator", "worker"} <= roles
    assert any(e.get("name") == "lease.roundtrip" for e in events)


def mono_bytes_of(store: ResultStore) -> bytes:
    """The reference bytes of a monolithic sweep store."""
    return store.path_for("sweep").read_bytes()


# --------------------------------------------------------------------------- #
# Live metrics plane
# --------------------------------------------------------------------------- #
def test_metrics_request_serves_snapshot_without_hello():
    coordinator = SweepCoordinator(TEST_SWEEP, batch_size=1)
    coordinator.start()
    stream = None
    try:
        stream = connect(coordinator.host, coordinator.port)
        stream.send({"type": "metrics"})
        reply = stream.recv()
        assert reply["type"] == "metrics"
        snapshot = reply["snapshot"]
        assert snapshot["total"] == TEST_SWEEP.size
        assert snapshot["pending"] == TEST_SWEEP.size
        assert snapshot["done"] == 0 and snapshot["workers"] == 0
        json.dumps(snapshot)  # the snapshot is JSON-safe by construction

        # The connection is an observer: it holds no lease state and stays
        # open, so a dashboard can poll without joining the fleet.
        stream.send({"type": "metrics"})
        assert stream.recv()["type"] == "metrics"

        text = render_prometheus(snapshot)
        assert "repro_queue_depth" in text and "# TYPE" in text
    finally:
        if stream is not None:
            stream.close()
        coordinator.shutdown()
