"""Sleep-model (case study) tests and evaluation-harness smoke tests."""

import pytest

from repro.evaluation.case_study import paper_worked_example
from repro.evaluation.figure1 import instruction_power_rows
from repro.evaluation.figure2 import motivating_example_report
from repro.evaluation.figure5 import evaluate_suite, summarize
from repro.power import PeriodicSensingModel, SleepParameters
from repro.power.sleep_model import (
    PAPER_FDCT_E0_J,
    PAPER_FDCT_KE,
    PAPER_FDCT_KT,
    PAPER_FDCT_TA_S,
    energy_saved,
)


# --------------------------------------------------------------------------- #
# Equations 10-12 and the paper's worked example
# --------------------------------------------------------------------------- #
def make_model(ke=PAPER_FDCT_KE, kt=PAPER_FDCT_KT):
    return PeriodicSensingModel(SleepParameters(
        active_energy_j=PAPER_FDCT_E0_J, active_time_s=PAPER_FDCT_TA_S,
        energy_factor=ke, time_factor=kt))


def test_paper_energy_saved_value():
    # The paper derives Es = 4.32 mJ from Eq. 12 with its fdct numbers.
    saved = energy_saved(PAPER_FDCT_E0_J, PAPER_FDCT_TA_S,
                         PAPER_FDCT_KE, PAPER_FDCT_KT)
    assert saved == pytest.approx(4.32e-3, rel=0.02)
    report = paper_worked_example()
    assert report["energy_saved_j"] == pytest.approx(report["paper_energy_saved_j"],
                                                     rel=0.02)


def test_energy_saved_is_period_independent():
    model = make_model()
    for period in (2.0, 5.0, 20.0):
        saved = model.baseline_energy(period) - model.optimized_energy(period)
        assert saved == pytest.approx(model.energy_saved(), rel=1e-9)


def test_energy_can_drop_even_without_active_region_saving():
    # ke = 1 (no active-region energy saving) but kt > 1 still reduces total
    # energy: the paper's Figure 8 observation.
    model = make_model(ke=1.0, kt=1.3)
    assert model.energy_saved() > 0
    assert model.energy_ratio(5.0) < 1.0


def test_small_periods_benefit_more():
    model = make_model()
    ratios = [model.energy_ratio(m * PAPER_FDCT_TA_S) for m in (1.5, 3, 6, 12)]
    assert ratios == sorted(ratios)          # saving shrinks as T grows
    assert ratios[0] < 0.85                  # ~>15 % saving at small periods
    assert ratios[-1] > ratios[0]


def test_battery_life_extension_around_paper_value():
    model = make_model()
    best = model.battery_life_extension(PAPER_FDCT_KT * PAPER_FDCT_TA_S)
    # The paper quotes "up to 32 %" battery-life extension.
    assert 0.20 < best < 0.45


def test_invalid_period_rejected():
    model = make_model()
    with pytest.raises(ValueError):
        model.baseline_energy(0.5)          # shorter than the active region
    with pytest.raises(ValueError):
        PeriodicSensingModel(SleepParameters(1.0, 0.0, 1.0, 1.0))


def test_sweep_periods_skips_infeasible_multiples():
    rows = make_model().sweep_periods([0.5, 2, 4])
    assert [row["period_multiple"] for row in rows] == [2, 4]
    assert all(0 < row["energy_ratio"] <= 1.0 for row in rows)


def test_sweep_periods_rows_satisfy_both_active_regions():
    # Every emitted row must satisfy TA <= T and kt*TA <= T (Eqs. 10-11);
    # a multiple exactly at kt is the boundary and must be kept.
    model = make_model(kt=1.33)
    rows = model.sweep_periods([1.0, 1.2, 1.33, 1.5, 3.0])
    assert [row["period_multiple"] for row in rows] == [1.33, 1.5, 3.0]
    p = model.params
    for row in rows:
        assert row["period_s"] >= p.active_time_s - 1e-12
        assert row["period_s"] >= p.time_factor * p.active_time_s - 1e-12


def test_energy_saved_deprecated_period_argument_warns():
    model = make_model()
    expected = model.energy_saved()
    with pytest.warns(DeprecationWarning):
        legacy = model.energy_saved(5.0)
    assert legacy == expected


# --------------------------------------------------------------------------- #
# Figure 1 microbenchmarks
# --------------------------------------------------------------------------- #
def test_figure1_ram_saves_power_except_for_flash_loads():
    rows = {row["instruction"]: row for row in instruction_power_rows()}
    for kind in ("store", "ram load", "add", "nop", "branch"):
        assert rows[kind]["ram_power_mw"] < rows[kind]["flash_power_mw"], kind
        assert rows[kind]["ram_saving_percent"] > 15.0
    # Loading flash-resident data while executing from RAM saves little.
    assert rows["flash load"]["ram_saving_percent"] < 15.0


# --------------------------------------------------------------------------- #
# Figure 2 motivating example
# --------------------------------------------------------------------------- #
def test_figure2_moves_the_loop_and_preserves_the_result():
    report = motivating_example_report()
    assert report["result_preserved"]
    assert report["loop_blocks_in_ram"], "the hot loop should be moved to RAM"
    assert report["energy_change"] < 0
    assert report["power_change"] < 0


# --------------------------------------------------------------------------- #
# Figure 5 (small subset as a smoke test; the full sweep is a benchmark)
# --------------------------------------------------------------------------- #
def test_figure5_subset_shows_paper_trends():
    rows = evaluate_suite(benchmarks=["int_matmult", "crc32"], levels=["O2"])
    summary = summarize(rows)
    assert summary["rows"] == 2
    # Energy goes down, power goes down, time goes up (paper's direction).
    assert summary["average_energy_change"] < 0
    assert summary["average_power_change"] < -0.05
    assert summary["average_time_change"] >= 0
    for row in rows:
        assert row.blocks_moved > 0
