"""IR construction/verification and optimization-pass unit tests."""

import pytest

from repro.ir import (
    BasicBlock,
    Const,
    Function,
    GlobalData,
    IRBuilder,
    IRVerificationError,
    Module,
    VReg,
    verify_function,
    verify_module,
)
from repro.ir.instructions import BinOp, Branch, Call, Jump, Load, Mov, Ret, Store
from repro.irgen import compile_source_to_ir
from repro.passes import (
    ConstantFoldingPass,
    CopyPropagationPass,
    DeadCodeEliminationPass,
    SimplifyCFGPass,
)
from repro.passes.constant_folding import evaluate_condition, fold_binop


def build_simple_function():
    function = Function("f", num_params=1)
    builder = IRBuilder(function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    doubled = builder.add(function.params[0], function.params[0])
    builder.ret(doubled)
    return function


# --------------------------------------------------------------------------- #
# IR structure and verification
# --------------------------------------------------------------------------- #
def test_builder_and_verifier_accept_simple_function():
    function = build_simple_function()
    verify_function(function)
    assert function.entry_block.is_terminated


def test_verifier_rejects_missing_terminator():
    function = Function("f")
    function.new_block("entry")
    with pytest.raises(IRVerificationError):
        verify_function(function)


def test_verifier_rejects_branch_to_unknown_block():
    function = Function("f")
    builder = IRBuilder(function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    entry.append(Jump("nowhere"))
    with pytest.raises(IRVerificationError):
        verify_function(function)


def test_verifier_rejects_undefined_vreg_use():
    function = Function("f")
    builder = IRBuilder(function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    entry.append(Ret(VReg(99)))
    with pytest.raises(IRVerificationError):
        verify_function(function)


def test_verifier_checks_cross_module_references():
    module = Module("m")
    function = Function("f")
    builder = IRBuilder(function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    builder.call("missing", [Const(1)])
    builder.ret(Const(0))
    module.add_function(function)
    with pytest.raises(IRVerificationError):
        verify_module(module)


def test_verifier_rejects_call_arity_mismatch():
    module = Module("m")
    callee = build_simple_function()      # named "f", one parameter
    module.add_function(callee)
    caller = Function("g")
    builder = IRBuilder(caller)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    builder.call("f", [Const(1), Const(2)])   # one argument too many
    builder.ret(Const(0))
    module.add_function(caller)
    with pytest.raises(IRVerificationError, match="expected 1"):
        verify_module(module)


def test_verifier_accepts_matching_call_arity():
    module = Module("m")
    callee = build_simple_function()
    module.add_function(callee)
    caller = Function("g")
    builder = IRBuilder(caller)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    builder.call("f", [Const(1)])
    builder.ret(Const(0))
    module.add_function(caller)
    verify_module(module)


def test_block_rejects_second_terminator():
    block = BasicBlock("b")
    block.append(Ret())
    with pytest.raises(ValueError):
        block.append(Jump("x"))


def test_module_merge_and_duplicate_detection():
    first = Module("a")
    first.add_function(build_simple_function())
    second = Module("b")
    second.add_global(GlobalData("table", [1, 2, 3], const=True))
    first.merge(second)
    assert "table" in first.globals
    with pytest.raises(ValueError):
        first.add_function(build_simple_function())


# --------------------------------------------------------------------------- #
# Constant folding
# --------------------------------------------------------------------------- #
def test_fold_binop_matches_two_complement_semantics():
    assert fold_binop("add", 0xFFFFFFFF, 1) == 0
    assert fold_binop("sub", 0, 1) == 0xFFFFFFFF
    assert fold_binop("mul", 0x10000, 0x10000) == 0
    assert fold_binop("sdiv", (-7) & 0xFFFFFFFF, 2) == (-3) & 0xFFFFFFFF
    assert fold_binop("udiv", 0xFFFFFFFE, 2) == 0x7FFFFFFF
    assert fold_binop("ashr", 0x80000000, 31) == 0xFFFFFFFF
    assert fold_binop("lshr", 0x80000000, 31) == 1
    assert fold_binop("sdiv", 5, 0) is None


def test_evaluate_condition_signedness():
    assert evaluate_condition("lt", (-1) & 0xFFFFFFFF, 1)
    assert not evaluate_condition("lo", (-1) & 0xFFFFFFFF, 1)
    assert evaluate_condition("hs", 5, 5)


def test_constant_folding_pass_folds_and_simplifies_branches():
    module = compile_source_to_ir("""
        int main(void) {
            int x = 3 * 4 + 1;
            if (2 > 1) { x += 1; }
            return x;
        }
    """)
    main = module.functions["main"]
    for _ in range(3):  # folding and propagation feed each other
        ConstantFoldingPass().run(main, module)
        CopyPropagationPass().run(main, module)
    folded_movs = [i for block in main.iter_blocks()
                   for i in block.instructions
                   if isinstance(i, Mov) and isinstance(i.src, Const)
                   and i.src.value == 13]
    assert folded_movs, "3*4+1 should fold to 13"


def test_dce_removes_unused_but_keeps_calls_and_stores():
    module = compile_source_to_ir("""
        int counter;
        int touch(void) { counter += 1; return counter; }
        int main(void) {
            int unused = 5 + 6;
            touch();
            return 1;
        }
    """)
    main = module.functions["main"]
    before = sum(len(b.instructions) for b in main.iter_blocks())
    DeadCodeEliminationPass().run(main, module)
    after = sum(len(b.instructions) for b in main.iter_blocks())
    assert after < before
    calls = [i for b in main.iter_blocks() for i in b.instructions
             if isinstance(i, Call)]
    assert calls, "the call with side effects must survive DCE"


def test_copy_propagation_rewrites_uses_within_block():
    function = Function("f", num_params=1)
    builder = IRBuilder(function)
    entry = builder.new_block("entry")
    builder.set_block(entry)
    copy = builder.mov(function.params[0])
    result = builder.add(copy, Const(1))
    builder.ret(result)
    CopyPropagationPass().run(function, Module("m"))
    add = entry.instructions[-1]
    assert isinstance(add, BinOp)
    assert add.lhs == function.params[0]


def test_simplify_cfg_removes_unreachable_and_merges_chains():
    from repro.codegen.optlevels import OptLevel, pass_manager_for
    module = compile_source_to_ir("""
        int main(void) {
            int x = 1;
            if (x) { x = 2; } else { x = 3; }
            return x;
        }
    """)
    main = module.functions["main"]
    pass_manager_for(OptLevel.O2).run(module)
    # After folding the always-true branch and cleaning up, the dead `x = 3`
    # block must be gone.
    assert all("if.else" not in name for name in main.block_order)


def test_pass_pipeline_preserves_program_semantics():
    from tests.conftest import compile_and_run
    source = """
        int main(void) {
            int x = 10;
            int y = x * 0 + 7;
            int z = y;
            for (int i = 0; i < 3; ++i) { z = z + y * 1; }
            return z;
        }
    """
    assert compile_and_run(source, "O0").return_value == \
        compile_and_run(source, "O3").return_value == 28
