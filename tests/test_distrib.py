"""Distributed sweep execution: determinism, fault tolerance, balancing.

The contract under test mirrors the sharding one from PR 3, strengthened:
however a fleet of workers leases, re-leases, duplicates or interleaves
batches — including workers killed mid-lease — the final store is **byte
identical** to a monolithic ``execute_sweep`` of the same spec, and dynamic
batch leasing finishes a straggler fleet sooner than a static partition
could.
"""

import io
import json
import multiprocessing
import time

import pytest

from repro.distrib import (
    PROTOCOL_VERSION,
    CoordinatorError,
    ProgressReporter,
    ProtocolError,
    SweepCoordinator,
    connect,
    execute_sweep_distributed,
    format_eta,
    worker_process_entry,
)
from repro.distrib.protocol import decode_message, encode_message
from repro.engine import ExperimentEngine, ProgramCache, ResultStore
from repro.explore import SweepSpec, execute_sweep

#: Same 4-cell sweep the persistence tests use (~1 s monolithic).
TEST_SWEEP = SweepSpec(benchmarks=("crc32", "fdct"), x_limits=(1.1, 1.5))

#: Spawn, not fork: the coordinator under test runs server threads, and
#: forking a threaded parent can deadlock the child on inherited locks.
SPAWN = multiprocessing.get_context("spawn")


def fresh_engine() -> ExperimentEngine:
    return ExperimentEngine(cache=ProgramCache())


@pytest.fixture(scope="module")
def monolithic(tmp_path_factory):
    """A clean monolithic run of TEST_SWEEP plus its per-cell wall time."""
    store = ResultStore(tmp_path_factory.mktemp("mono"))
    started = time.monotonic()
    execute_sweep(TEST_SWEEP, store=store, engine=fresh_engine(),
                  max_workers=1)
    per_cell = (time.monotonic() - started) / TEST_SWEEP.size
    return store, per_cell


def spawn_worker(coordinator, **kwargs):
    process = SPAWN.Process(target=worker_process_entry,
                            args=(coordinator.host, coordinator.port),
                            kwargs=kwargs, daemon=True)
    process.start()
    return process


def wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


# --------------------------------------------------------------------------- #
# Spec round trip (what workers rebuild from the welcome message)
# --------------------------------------------------------------------------- #
def test_spec_roundtrips_through_meta_with_identical_cell_keys():
    spec = SweepSpec(benchmarks=("crc32", "fdct"), opt_levels=("O2", "Os"),
                     x_limits=(1.1, 2.0), r_spares=(None, 512),
                     flash_ram_ratios=(None, 2.5), solvers=("ilp", "greedy"),
                     frequency_modes=("static",))
    # Through meta() and through a real JSON round trip (the wire format).
    for meta in (spec.meta(), json.loads(json.dumps(spec.meta()))):
        rebuilt = SweepSpec.from_meta(meta)
        assert rebuilt == spec
        assert [c.key for c in rebuilt.cells()] == \
            [c.key for c in spec.cells()]
    with pytest.raises(ValueError, match="missing axis"):
        SweepSpec.from_meta({"benchmarks": ["crc32"]})


# --------------------------------------------------------------------------- #
# Happy path: distributed == monolithic, byte for byte
# --------------------------------------------------------------------------- #
def test_distributed_run_is_byte_identical_to_monolithic(tmp_path, monolithic):
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "dist")
    summary = execute_sweep(TEST_SWEEP, store=store, workers=2)
    assert summary["computed"] == TEST_SWEEP.size
    assert summary["distrib"]["workers"] == 2
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_distributed_resume_computes_only_missing_cells(tmp_path, monolithic):
    mono_store, _ = monolithic
    full = mono_store.load_keyed("sweep")
    keys = sorted(full)
    store = ResultStore(tmp_path / "resume")
    store.save_keyed("sweep", [full[k] for k in keys[:2]],
                     meta=TEST_SWEEP.meta())
    summary = execute_sweep(TEST_SWEEP, store=store, workers=2, resume=True)
    assert summary["skipped"] == 2 and summary["computed"] == 2
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_worker_with_inner_engine_pool_is_allowed(tmp_path, monolithic):
    # worker_options={"max_workers": N} opens a process pool *inside* the
    # worker, so local fleet processes must not be daemonic.
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "pooled")
    summary = execute_sweep_distributed(
        TEST_SWEEP, store=store, workers=1,
        worker_options=[{"name": "pooled", "max_workers": 2}])
    assert summary["computed"] == TEST_SWEEP.size
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_local_fleet_validates_arguments():
    with pytest.raises(ValueError, match="at least 1 worker"):
        execute_sweep_distributed(TEST_SWEEP, workers=0)
    with pytest.raises(ValueError, match="worker_options"):
        execute_sweep_distributed(TEST_SWEEP, workers=1,
                                  worker_options=[{}, {}])
    with pytest.raises(ValueError, match="recheck"):
        execute_sweep(TEST_SWEEP, workers=1, recheck=1)


# --------------------------------------------------------------------------- #
# Fault tolerance
# --------------------------------------------------------------------------- #
def test_worker_killed_mid_lease_batch_is_relesed_bitwise(tmp_path,
                                                          monolithic):
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "killed")
    coordinator = SweepCoordinator(TEST_SWEEP, store=store, batch_size=1,
                                   lease_timeout=30.0, checkpoint_every=1)
    coordinator.start()
    victim = None
    replacement = None
    try:
        # The victim computes its leased cell, then sleeps ~60 s before
        # reporting — a wide-open window in which to SIGKILL it mid-lease.
        victim = spawn_worker(coordinator, name="victim", throttle=60.0)
        wait_until(lambda: coordinator.stats()["leased"] >= 1,
                   message="victim to take a lease")
        victim.kill()
        victim.join(timeout=30.0)

        # The dropped connection must re-queue the victim's batch...
        wait_until(lambda: coordinator.stats()["requeued_batches"] >= 1,
                   message="the victim's lease to be re-queued")
        # ...and a replacement worker finishes the whole sweep.
        replacement = spawn_worker(coordinator, name="replacement")
        assert coordinator.wait(180.0), "sweep did not finish after re-lease"
        summary = coordinator.summary()
    finally:
        coordinator.shutdown()
        for process in (victim, replacement):
            if process is not None:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()

    stats = summary["distrib"]
    assert stats["requeued_batches"] >= 1
    victim_cells = [count for worker, count in stats["cells_by_worker"].items()
                    if worker.startswith("victim")]
    assert victim_cells and all(count == 0 for count in victim_cells)
    # Checkpoints were journaled during the run and compacted at the end;
    # the store is still byte-identical to the monolithic run.
    assert not store.journal_path("sweep").exists()
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def fake_worker(coordinator, name):
    """A raw protocol client — lets tests misbehave in controlled ways."""
    stream = connect(coordinator.host, coordinator.port)
    stream.send({"type": "hello", "version": PROTOCOL_VERSION, "worker": name})
    welcome = stream.recv()
    assert welcome["type"] == "welcome"
    return stream


def request(stream):
    stream.send({"type": "request"})
    return stream.recv()


def test_expired_lease_requeues_while_connection_stays_open():
    coordinator = SweepCoordinator(TEST_SWEEP, batch_size=1,
                                   lease_timeout=0.5)
    coordinator.start()
    hung = None
    worker = None
    try:
        # A connected-but-hung worker (no heartbeats) must not block the
        # sweep: its lease expires and the batch goes back to the queue.
        hung = fake_worker(coordinator, "hung")
        lease = request(hung)
        assert lease["type"] == "lease" and len(lease["keys"]) == 1
        wait_until(lambda: coordinator.stats()["requeued_batches"] >= 1,
                   timeout=30.0, message="the hung lease to expire")

        worker = spawn_worker(coordinator, name="rescuer")
        assert coordinator.wait(180.0)
        summary = coordinator.summary()
        assert summary["computed"] == TEST_SWEEP.size
        assert summary["distrib"]["requeued_batches"] >= 1
    finally:
        if hung is not None:
            hung.close()
        coordinator.shutdown()
        if worker is not None:
            worker.join(timeout=10.0)
            if worker.is_alive():
                worker.terminate()


def test_duplicate_completions_validated_bitwise():
    sweep = SweepSpec(benchmarks=("crc32",), x_limits=(1.1, 1.5))
    keys = [cell.key for cell in sweep.cells()]
    coordinator = SweepCoordinator(sweep, batch_size=1, lease_timeout=0.5)
    coordinator.start()
    first = second = None
    try:
        # `first` takes a lease and goes silent; the lease expires and the
        # same cell is re-leased to `second` — at-least-once execution.
        first = fake_worker(coordinator, "first")
        lease_a = request(first)
        assert lease_a["type"] == "lease"
        key = lease_a["keys"][0]
        wait_until(lambda: coordinator.stats()["requeued_batches"] >= 1,
                   timeout=30.0, message="the silent lease to expire")
        second = fake_worker(coordinator, "second")
        lease_b = request(second)
        assert lease_b["type"] == "lease" and lease_b["keys"] == [key]

        fabricated = {"cell_key": key, "energy_j": 1.0}
        second.send({"type": "result", "lease_id": lease_b["lease_id"],
                     "records": [fabricated]})
        wait_until(lambda: coordinator.stats()["computed"] == 1,
                   message="the fabricated completion to land")

        # A bitwise-identical duplicate is tolerated (and counted)...
        first.send({"type": "result", "lease_id": lease_a["lease_id"],
                    "records": [dict(fabricated)]})
        wait_until(lambda: coordinator.stats()["duplicate_records"] == 1,
                   message="the agreeing duplicate to be counted")
        assert coordinator.stats()["failure"] is None

        # ...but a conflicting duplicate aborts the run: a fleet that does
        # not reproduce bitwise must not write a store.
        first.send({"type": "result", "lease_id": lease_a["lease_id"],
                    "records": [{"cell_key": key, "energy_j": 2.0}]})
        with pytest.raises(CoordinatorError, match="DIFFERENT"):
            coordinator.run(timeout=30.0)
        assert keys  # both cells belonged to the sweep
    finally:
        for stream in (first, second):
            if stream is not None:
                stream.close()
        coordinator.shutdown()


def test_result_for_unknown_cell_is_rejected():
    coordinator = SweepCoordinator(TEST_SWEEP, batch_size=1)
    coordinator.start()
    rogue = None
    try:
        rogue = fake_worker(coordinator, "rogue")
        lease = request(rogue)
        rogue.send({"type": "result", "lease_id": lease["lease_id"],
                    "records": [{"cell_key": "feedfacefeedface"}]})
        reply = rogue.recv()
        assert reply["type"] == "error"
        assert "unknown cell" in reply["message"]
        # The rogue's lease went back to the queue when it was disconnected.
        wait_until(lambda: coordinator.stats()["requeued_batches"] >= 1,
                   timeout=30.0, message="the rogue's lease to be re-queued")
        assert coordinator.stats()["failure"] is None
    finally:
        if rogue is not None:
            rogue.close()
        coordinator.shutdown()


# --------------------------------------------------------------------------- #
# Dynamic balancing beats static sharding on a straggler fleet
# --------------------------------------------------------------------------- #
def test_straggler_fleet_beats_static_sharding_and_stays_bitwise(
        tmp_path, monolithic):
    mono_store, per_cell = monolithic
    total = TEST_SWEEP.size
    # The slow worker sleeps `throttle` per cell.  Under a static 2-way
    # partition it would own ceil(total/2) cells, so its *sleep time alone*
    # bounds a static run from below at 2*throttle.  Dynamic leasing should
    # instead hand almost everything to the fast worker: the whole run
    # costs about one straggler cell plus the fast worker's compute, which
    # stays under the static bound as long as throttle > spawn + total*c —
    # hence the self-calibrating margin below.
    throttle = max(2.0, 4 * per_cell + 4.0)
    static_lower_bound = (total - total // 2) * throttle

    store = ResultStore(tmp_path / "straggler")
    started = time.monotonic()
    summary = execute_sweep_distributed(
        TEST_SWEEP, store=store, workers=2, batch_size=1,
        worker_options=[{"name": "slow", "throttle": throttle},
                        {"name": "fast"}])
    dynamic_wall = time.monotonic() - started

    assert dynamic_wall < static_lower_bound, (
        f"dynamic run took {dynamic_wall:.2f}s, static sleep-only lower "
        f"bound is {static_lower_bound:.2f}s")
    counts = summary["distrib"]["cells_by_worker"]
    slow_cells = sum(count for worker, count in counts.items()
                     if worker.startswith("slow"))
    assert slow_cells < total  # the fast worker picked up the slack
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


# --------------------------------------------------------------------------- #
# Protocol and progress units (no sockets, no simulation)
# --------------------------------------------------------------------------- #
def test_message_encoding_is_canonical_and_validated():
    message = {"type": "lease", "lease_id": 7, "keys": ["aa", "bb"]}
    line = encode_message(message)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert decode_message(line.decode()) == message
    # Canonical: key order does not change the bytes.
    assert encode_message({"keys": ["aa", "bb"], "lease_id": 7,
                           "type": "lease"}) == line
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_message("{not json")
    with pytest.raises(ProtocolError, match="'type'"):
        decode_message('["a", "list"]')
    with pytest.raises(ProtocolError, match="'type'"):
        decode_message('{"no_type": 1}')


def test_progress_reporter_rate_eta_and_throttling():
    clock = [0.0]
    stream = io.StringIO()
    reporter = ProgressReporter(total=10, label="t", stream=stream,
                                interval=1.0, clock=lambda: clock[0])
    clock[0] = 2.0
    reporter.update(2)                      # 1 cell/s -> ETA 8s
    clock[0] = 2.5
    reporter.update(3)                      # throttled: within the interval
    clock[0] = 4.0
    reporter.update(4, extra="2 workers")
    clock[0] = 5.0
    reporter.update(10)                     # completion always emits
    lines = stream.getvalue().splitlines()
    assert len(lines) == 3                  # the throttled update is absent
    assert "2/10 cells (20.0%), 1.00 cells/s, ETA 8s" in lines[0]
    assert "2 workers" in lines[1]
    assert "10/10" in lines[2] and "done" in lines[2]


def test_format_eta_renders_compact_durations():
    assert format_eta(12) == "12s"
    assert format_eta(95) == "1m35s"
    assert format_eta(3700) == "1h01m"
