"""Unit tests for the ISA tables and the graph/dataflow analyses."""

import pytest

from repro.analysis import (
    CFGView,
    compute_dominators,
    estimate_block_frequencies,
    find_natural_loops,
    loop_depths,
)
from repro.analysis.cfg import reachable_blocks, reverse_postorder
from repro.analysis.dominators import immediate_dominators
from repro.analysis.stack_usage import estimate_stack_usage, spare_ram_for_code
from repro.isa import (
    Cond,
    Imm,
    MachineInstr,
    Opcode,
    R0,
    R1,
    Sym,
    cond_holds,
    cycles_for,
    invert_cond,
    size_of,
)
from repro.isa.instructions import RegList
from repro.isa.registers import LR, PC, Reg


# --------------------------------------------------------------------------- #
# Conditions
# --------------------------------------------------------------------------- #
def test_condition_inversion_is_involutive():
    for cond in Cond:
        if cond is Cond.AL:
            continue
        assert invert_cond(invert_cond(cond)) is cond


def test_condition_evaluation_signed_and_unsigned():
    # flags for 1 - 2 (signed): N=1, Z=0, C=0 (borrow), V=0
    assert cond_holds(Cond.LT, True, False, False, False)
    assert not cond_holds(Cond.GE, True, False, False, False)
    assert cond_holds(Cond.LO, True, False, False, False)
    # flags for 5 - 5
    assert cond_holds(Cond.EQ, False, True, True, False)
    assert cond_holds(Cond.LE, False, True, True, False)
    assert cond_holds(Cond.HS, False, True, True, False)
    assert not cond_holds(Cond.HI, False, True, True, False)


def test_always_condition_cannot_be_inverted():
    with pytest.raises(ValueError):
        invert_cond(Cond.AL)


# --------------------------------------------------------------------------- #
# Sizes and timing
# --------------------------------------------------------------------------- #
def test_instruction_sizes():
    assert size_of(MachineInstr(Opcode.MOV, [R0, Imm(5)])) == 2
    assert size_of(MachineInstr(Opcode.MOV, [R0, Imm(5000)])) == 4
    assert size_of(MachineInstr(Opcode.B, [Sym("x")])) == 2
    assert size_of(MachineInstr(Opcode.BL, [Sym("f")])) == 4
    assert size_of(MachineInstr(Opcode.LDR_PC_LIT, [Sym("x")])) == 4
    assert size_of(MachineInstr(Opcode.LDR, [R0, R1, Imm(8)])) == 2
    assert size_of(MachineInstr(Opcode.LDR, [R0, R1, Imm(512)])) == 4
    assert size_of(MachineInstr(Opcode.SDIV, [R0, R0, R1])) == 4


def test_cycle_costs():
    assert cycles_for(MachineInstr(Opcode.ADD, [R0, R0, Imm(1)])) == 1
    assert cycles_for(MachineInstr(Opcode.LDR, [R0, R1, Imm(0)])) == 2
    assert cycles_for(MachineInstr(Opcode.B, [Sym("x")])) == 3
    assert cycles_for(MachineInstr(Opcode.BCC, [Sym("x")], cond=Cond.NE), taken=False) == 1
    assert cycles_for(MachineInstr(Opcode.BCC, [Sym("x")], cond=Cond.NE), taken=True) == 3
    assert cycles_for(MachineInstr(Opcode.LDR_PC_LIT, [Sym("x")])) == 4
    push = MachineInstr(Opcode.PUSH, [RegList((Reg(4), LR))])
    assert cycles_for(push) == 3
    pop_pc = MachineInstr(Opcode.POP, [RegList((Reg(4), PC))])
    assert cycles_for(pop_pc) == 5


def test_terminator_and_def_use_queries():
    bx = MachineInstr(Opcode.BX, [LR])
    assert bx.is_terminator
    pop_pc = MachineInstr(Opcode.POP, [RegList((Reg(4), PC))])
    assert pop_pc.is_terminator
    add = MachineInstr(Opcode.ADD, [R0, R1, Imm(1)])
    assert add.defs() == [R0]
    assert add.uses() == [R1]
    store = MachineInstr(Opcode.STR, [R0, R1, Imm(0)])
    assert store.defs() == []
    assert set(store.uses()) == {R0, R1}


# --------------------------------------------------------------------------- #
# CFG analyses
# --------------------------------------------------------------------------- #
def diamond_cfg():
    return CFGView(entry="a", successors={
        "a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []})


def loop_cfg():
    return CFGView(entry="entry", successors={
        "entry": ["header"],
        "header": ["body", "exit"],
        "body": ["inner_header"],
        "inner_header": ["inner_body", "latch"],
        "inner_body": ["inner_header"],
        "latch": ["header"],
        "exit": [],
    })


def test_reachability_and_rpo():
    cfg = diamond_cfg()
    cfg.successors["unreachable"] = ["d"]
    assert reachable_blocks(cfg) == {"a", "b", "c", "d"}
    order = reverse_postorder(cfg)
    assert order[0] == "a" and order[-1] == "d"


def test_dominators_of_diamond():
    doms = compute_dominators(diamond_cfg())
    assert doms["d"] == {"a", "d"}
    assert doms["b"] == {"a", "b"}
    idom = immediate_dominators(diamond_cfg())
    assert idom["d"] == "a"
    assert idom["a"] is None


def test_natural_loops_and_depths():
    cfg = loop_cfg()
    loops = find_natural_loops(cfg)
    headers = {loop.header for loop in loops}
    assert headers == {"header", "inner_header"}
    depths = loop_depths(cfg)
    assert depths["entry"] == 0
    assert depths["header"] == 1
    assert depths["inner_header"] == 2
    assert depths["inner_body"] == 2
    assert depths["exit"] == 0


def test_frequency_estimate_follows_loop_depth():
    freqs = estimate_block_frequencies(loop_cfg(), loop_weight=10)
    assert freqs["entry"] == 1
    assert freqs["header"] == 10
    assert freqs["inner_body"] == 100
    assert freqs["exit"] == 1


# --------------------------------------------------------------------------- #
# Stack usage
# --------------------------------------------------------------------------- #
def test_stack_usage_worst_chain():
    frames = {"main": 16, "a": 32, "b": 8, "leaf": 64}
    calls = {"main": {"a", "b"}, "a": {"leaf"}, "b": set(), "leaf": set()}
    report = estimate_stack_usage(frames, calls, "main")
    assert report.worst_case == 16 + 32 + 64
    assert report.worst_chain == ["main", "a", "leaf"]
    assert not report.recursive


def test_stack_usage_recursion_is_bounded():
    frames = {"main": 8, "rec": 16}
    calls = {"main": {"rec"}, "rec": {"rec"}}
    report = estimate_stack_usage(frames, calls, "main", recursion_bound=4)
    assert report.recursive
    assert report.worst_case >= 8 + 16


def test_spare_ram_derivation():
    assert spare_ram_for_code(8192, 1000, 500, safety_margin=64) == 8192 - 1000 - 500 - 64
    assert spare_ram_for_code(1024, 2000, 500) == 0
