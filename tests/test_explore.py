"""Tests for the design-space exploration subsystem and incremental model."""

import random

import pytest

from repro.engine import ExperimentEngine, ProgramCache, ResultStore, records_equal
from repro.explore import (
    SweepSpec,
    dominates,
    mark_pareto,
    pareto_front,
    pareto_records,
    profile_guided_placement,
    run_sweep,
    scaled_energy_model,
)
from repro.placement import (
    FlashRAMOptimizer,
    PlacementConfig,
    PlacementCostModel,
)
from repro.placement.cost_model import IncrementalPlacement
from repro.placement.parameters import BlockParameters
from repro.placement.solvers.exhaustive import (
    enumerate_placements,
    exhaustive_best_placement,
    significant_blocks,
)
from repro.sim import EnergyModel


def beebs_model(name="crc32", level="O2"):
    program = ProgramCache().get_benchmark_mutable(name, level)
    optimizer = FlashRAMOptimizer(program, config=PlacementConfig())
    return optimizer.build_cost_model()


def fresh_engine() -> ExperimentEngine:
    return ExperimentEngine(cache=ProgramCache())


# --------------------------------------------------------------------------- #
# Incremental cost-model evaluation
# --------------------------------------------------------------------------- #
def test_incremental_matches_full_evaluation_under_random_toggles():
    model = beebs_model("fdct")
    keys = model.eligible_keys()
    placement = IncrementalPlacement(model)
    rng = random.Random(7)
    for _ in range(60):
        placement.toggle(rng.choice(keys))
        full = model.evaluate(placement.ram)
        inc = placement.estimate()
        assert inc.ram_bytes == full.ram_bytes
        assert inc.instrumented == full.instrumented
        assert inc.energy_j == pytest.approx(full.energy_j, rel=1e-12)
        assert inc.cycles == pytest.approx(full.cycles, rel=1e-12)
        assert inc.time_ratio == pytest.approx(full.time_ratio, rel=1e-12)


def test_incremental_preview_does_not_mutate_state():
    model = beebs_model("crc32")
    placement = IncrementalPlacement(model)
    key = model.eligible_keys()[0]
    before = (set(placement.ram), set(placement.instrumented),
              placement.energy_j, placement.cycles, placement.ram_bytes)
    preview = placement.preview_toggle(key)
    totals = placement.preview_totals(key)
    assert (set(placement.ram), set(placement.instrumented),
            placement.energy_j, placement.cycles, placement.ram_bytes) == before
    assert preview.energy_j == totals[0]
    assert preview.time_ratio == totals[1]
    assert preview.ram_bytes == totals[2]
    # Committing produces exactly what the preview promised.
    placement.add(key)
    committed = placement.estimate()
    assert committed.energy_j == preview.energy_j
    assert committed.ram_bytes == preview.ram_bytes
    assert committed.instrumented == preview.instrumented


def test_exhaustive_gray_code_matches_full_enumeration_optimum():
    model = beebs_model("int_matmult")
    blocks = significant_blocks(model, 8)
    best = exhaustive_best_placement(model, r_spare=300, x_limit=1.5,
                                     blocks=blocks)
    # Reference: the pre-incremental implementation, one full evaluation per
    # enumerated subset.
    ref_best, ref_energy = set(), model.baseline_energy()
    for point in enumerate_placements(model, blocks, max_blocks=8):
        estimate = point.estimate
        if estimate.ram_bytes > 300 or estimate.time_ratio > 1.5 + 1e-9:
            continue
        if estimate.energy_j < ref_energy - 1e-15:
            ref_energy = estimate.energy_j
            ref_best = set(point.ram_blocks)
    assert model.evaluate(best).energy_j == pytest.approx(ref_energy, rel=1e-12)
    assert model.evaluate(best).ram_bytes == model.evaluate(ref_best).ram_bytes


# --------------------------------------------------------------------------- #
# Scaled energy models
# --------------------------------------------------------------------------- #
def test_scaled_energy_model_hits_requested_ratio():
    for ratio in (1.1, 1.7, 2.5, 4.0):
        model = scaled_energy_model(ratio)
        assert model.e_flash / model.e_ram == pytest.approx(ratio, rel=1e-12)
    base = EnergyModel()
    scaled = scaled_energy_model(2.0, base)
    assert scaled.table.ram == base.table.ram  # RAM axis untouched
    with pytest.raises(ValueError):
        scaled_energy_model(0.0)


# --------------------------------------------------------------------------- #
# Sweeps
# --------------------------------------------------------------------------- #
def test_sweep_spec_rejects_empty_axes_and_orders_cells():
    with pytest.raises(ValueError):
        SweepSpec(benchmarks=())
    spec = SweepSpec(benchmarks=["crc32", "fdct"], x_limits=[1.1, 1.5])
    cells = spec.cells()
    assert len(cells) == spec.size == 4
    assert [(c.spec.benchmark, c.spec.x_limit) for c in cells] == [
        ("crc32", 1.1), ("crc32", 1.5), ("fdct", 1.1), ("fdct", 1.5)]


def test_sweep_parallel_matches_sequential_bitwise(tmp_path):
    spec = SweepSpec(benchmarks=("crc32", "fdct"), x_limits=(1.1, 1.5),
                     flash_ram_ratios=(None, 2.5))
    sequential = run_sweep(spec, engine=fresh_engine(), max_workers=1)
    parallel = run_sweep(spec, engine=fresh_engine(), max_workers=2)

    store = ResultStore(tmp_path)
    store.save("sequential", sequential.records, meta=sequential.meta())
    store.save("parallel", parallel.records, meta=parallel.meta())
    assert records_equal(store.load("sequential"), store.load("parallel"))
    assert store.load_meta("sequential")["cells"] == 8


def test_sweep_ratio_axis_changes_energy_but_not_cycles():
    spec = SweepSpec(benchmarks=("crc32",), x_limits=(1.5,),
                     flash_ram_ratios=(None, 2.5))
    result = run_sweep(spec, engine=fresh_engine(), max_workers=1)
    calibrated, scaled = result.records
    # Same program, same placement semantics: cycle counts agree; a more
    # expensive flash makes the optimization save relatively more energy.
    assert calibrated["cycles"] == scaled["cycles"]
    assert scaled["energy_change"] < calibrated["energy_change"] < 0


# --------------------------------------------------------------------------- #
# Pareto extraction
# --------------------------------------------------------------------------- #
def test_dominates_semantics():
    assert dominates((1.0, 1.0), (2.0, 1.0))
    assert not dominates((2.0, 1.0), (1.0, 1.0))
    assert not dominates((1.0, 1.0), (1.0, 1.0))       # equal: no domination
    assert not dominates((0.0, 2.0), (1.0, 1.0))       # trade-off


def test_pareto_front_on_hand_built_points():
    points = [
        {"benchmark": "b", "energy_j": 1.0, "time_ratio": 1.5, "ram_bytes": 100},
        {"benchmark": "b", "energy_j": 2.0, "time_ratio": 1.1, "ram_bytes": 50},
        {"benchmark": "b", "energy_j": 2.5, "time_ratio": 1.2, "ram_bytes": 60},  # dominated by #2
        {"benchmark": "b", "energy_j": 0.9, "time_ratio": 1.6, "ram_bytes": 100},
        {"benchmark": "b", "energy_j": 1.0, "time_ratio": 1.5, "ram_bytes": 100},  # duplicate of #1
    ]
    front = pareto_records(points)
    ids = [next(i for i, q in enumerate(points) if q is p) for p in front]
    assert ids == [0, 1, 3, 4]

    marked = mark_pareto(points)
    assert [row["pareto"] for row in marked] == [True, True, False, True, True]


def test_mark_pareto_groups_by_benchmark():
    points = [
        {"benchmark": "a", "energy_j": 1.0, "time_ratio": 1.0, "ram_bytes": 10},
        {"benchmark": "b", "energy_j": 2.0, "time_ratio": 2.0, "ram_bytes": 20},
    ]
    # Each benchmark's cloud is its own trade-off space, so a point that
    # would be dominated globally is still its group's frontier.
    assert all(row["pareto"] for row in mark_pareto(points))


def test_pareto_front_preserves_input_order_generic_key():
    values = [(3, 1), (1, 3), (2, 2), (2, 3)]
    front = pareto_front(values, key=lambda v: v)
    assert front == [(3, 1), (1, 3), (2, 2)]


# --------------------------------------------------------------------------- #
# Profile-guided fixpoint
# --------------------------------------------------------------------------- #
def test_profile_guided_reaches_fixpoint_and_preserves_result():
    engine = fresh_engine()
    result = profile_guided_placement("crc32", engine=engine, max_iterations=8)
    assert result.converged
    assert 1 <= len(result.iterations) < 8
    assert result.ram_blocks, "the fixpoint placement should move blocks"
    assert result.final is not None
    assert result.final.return_value == result.baseline.return_value
    assert result.energy_change < 0
    record = result.record()
    assert record["converged"] and record["iterations"] == len(result.iterations)


def test_profile_guided_respects_iteration_bound():
    engine = fresh_engine()
    result = profile_guided_placement("crc32", engine=engine, max_iterations=1)
    assert len(result.iterations) <= 1
    with pytest.raises(ValueError):
        profile_guided_placement("crc32", engine=engine, max_iterations=0)


# --------------------------------------------------------------------------- #
# Instrumented-set neighbourhood invariant (basis of the incremental update)
# --------------------------------------------------------------------------- #
def test_toggle_only_affects_block_and_predecessors():
    params = {
        "f:a": BlockParameters("f:a", "f", "a", 10, 5, 1.0, 4, 4, 0, ["f:b"]),
        "f:b": BlockParameters("f:b", "f", "b", 10, 5, 1.0, 4, 4, 0, ["f:c"]),
        "f:c": BlockParameters("f:c", "f", "c", 10, 5, 1.0, 4, 4, 0, ["f:c"]),
    }
    model = PlacementCostModel(params, 2.0, 1.0)
    placement = IncrementalPlacement(model)
    placement.toggle("f:b")
    assert placement.ram == {"f:b"}
    assert placement.instrumented == model.instrumented_set({"f:b"}) == {"f:a", "f:b"}
    placement.toggle("f:c")  # self-loop successor must not confuse the update
    assert placement.instrumented == model.instrumented_set({"f:b", "f:c"})
    placement.toggle("f:b")
    placement.toggle("f:c")
    assert placement.ram == set()
    assert placement.instrumented == set()
    assert placement.ram_bytes == 0
