"""Tests for the placement cost model, ILP solver stack and code transformation."""

import numpy as np
import pytest

from repro.codegen import CompileOptions, compile_source
from repro.machine.blocks import TerminatorKind
from repro.placement import (
    FlashRAMOptimizer,
    PlacementConfig,
    PlacementCostModel,
    build_placement_ilp,
    extract_parameters,
    optimize_program,
)
from repro.placement.ilp import solution_to_ram_set
from repro.placement.parameters import BlockParameters
from repro.placement.solvers import (
    enumerate_placements,
    exhaustive_best_placement,
    greedy_placement,
    solve_ilp,
    solve_lp,
)
from repro.placement.solvers.lp import LPStatus
from repro.sim import EnergyModel, Simulator
from repro.transform import apply_placement, figure4_cost_table, instrumentation_overhead

LOOP_SOURCE = """
int data[32];
int main(void) {
    for (int i = 0; i < 32; ++i) { data[i] = i; }
    int total = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 32; ++i) {
            total += data[i] * round;
        }
        if (total > 100000) { total -= 100000; }
    }
    return total;
}
"""


def compile_program(source=LOOP_SOURCE, level="O2"):
    return compile_source(source, CompileOptions.for_level(level))


def make_model(program=None, **kwargs):
    program = program or compile_program()
    params = extract_parameters(program, **kwargs)
    energy = EnergyModel()
    return PlacementCostModel(params, energy.e_flash, energy.e_ram)


# --------------------------------------------------------------------------- #
# Parameters (Section 4.1)
# --------------------------------------------------------------------------- #
def test_parameters_cover_every_block_and_are_positive():
    program = compile_program()
    params = extract_parameters(program)
    block_keys = {program.block_key(b) for b in program.iter_blocks()}
    assert set(params) == block_keys
    for p in params.values():
        assert p.size >= 0 and p.cycles >= 1 and p.frequency >= 0


def test_static_frequency_reflects_loop_nesting():
    program = compile_program()
    params = extract_parameters(program, loop_weight=10)
    freqs = [p.frequency for p in params.values()]
    assert max(freqs) >= 100  # the doubly nested loop body
    assert min(freqs) >= 0


def test_profile_frequency_matches_simulator_counts():
    program = compile_program()
    result = Simulator(program).run()
    params = extract_parameters(program, frequency_mode="profile",
                                profile=result.profile)
    hot_key, hot_count = result.profile.hottest(1)[0]
    assert params[hot_key].frequency == hot_count


def test_profile_mode_requires_profile():
    with pytest.raises(ValueError):
        extract_parameters(compile_program(), frequency_mode="profile")


def test_library_blocks_are_ineligible():
    source = """
        float f(float x) { return x * 2.0; }
        int main(void) { float y = f(3.0); return y; }
    """
    program = compile_program(source)
    params = extract_parameters(program)
    library = [p for p in params.values() if p.library]
    assert library, "soft-float library blocks should be present"
    assert all(not p.eligible for p in library)


# --------------------------------------------------------------------------- #
# Cost model (Equations 1-9)
# --------------------------------------------------------------------------- #
def test_empty_placement_matches_baseline():
    model = make_model()
    estimate = model.evaluate(set())
    assert estimate.energy_j == pytest.approx(model.baseline_energy())
    assert estimate.time_ratio == pytest.approx(1.0)
    assert estimate.ram_bytes == 0
    assert not estimate.instrumented


def test_moving_everything_eligible_reduces_energy_and_increases_time():
    model = make_model()
    everything = set(model.eligible_keys())
    estimate = model.evaluate(everything)
    assert estimate.energy_j < model.baseline_energy()
    assert estimate.time_ratio >= 1.0
    assert estimate.ram_bytes > 0


def test_instrumented_set_follows_equation5():
    params = {
        "f:a": BlockParameters("f:a", "f", "a", 10, 5, 1.0, 4, 4, 0, ["f:b"]),
        "f:b": BlockParameters("f:b", "f", "b", 10, 5, 1.0, 4, 4, 0, ["f:c"]),
        "f:c": BlockParameters("f:c", "f", "c", 10, 5, 1.0, 4, 4, 0, []),
    }
    model = PlacementCostModel(params, 2.0, 1.0)
    # b in RAM: a crosses into it, b crosses out of it, c has no successors.
    assert model.instrumented_set({"f:b"}) == {"f:a", "f:b"}
    # a and b both in RAM: only b (exits to flash c) is instrumented.
    assert model.instrumented_set({"f:a", "f:b"}) == {"f:b"}
    # everything in RAM: nothing crosses.
    assert model.instrumented_set({"f:a", "f:b", "f:c"}) == set()


def test_clustering_avoids_instrumenting_hot_loop():
    # A hot loop followed by a tiny join block: moving both is better than
    # moving only the loop because it removes the loop's instrumentation
    # (the paper's motivating observation).
    params = {
        "f:loop": BlockParameters("f:loop", "f", "loop", 40, 20, 1000.0, 6, 5, 0,
                                  ["f:loop", "f:join"]),
        "f:join": BlockParameters("f:join", "f", "join", 8, 3, 10.0, 2, 1, 0,
                                  ["f:exit"]),
        "f:exit": BlockParameters("f:exit", "f", "exit", 8, 3, 1.0, 0, 0, 0, []),
    }
    model = PlacementCostModel(params, 2.0, 1.0)
    only_loop = model.evaluate({"f:loop"})
    loop_and_join = model.evaluate({"f:loop", "f:join"})
    assert loop_and_join.energy_j < only_loop.energy_j


def test_ram_usage_includes_instrumentation_bytes():
    model = make_model()
    key = model.eligible_keys()[0]
    estimate = model.evaluate({key})
    expected = model.parameters[key].size
    if key in estimate.instrumented:
        expected += model.parameters[key].instrument_bytes
    assert estimate.ram_bytes == expected


# --------------------------------------------------------------------------- #
# LP / ILP solvers
# --------------------------------------------------------------------------- #
def test_lp_solves_textbook_problem():
    # min -3x - 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
    c = np.array([-3.0, -5.0])
    a = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]])
    b = np.array([4.0, 12.0, 18.0])
    result = solve_lp(c, a, b)
    assert result.status is LPStatus.OPTIMAL
    assert result.objective == pytest.approx(-36.0)
    assert result.values[0] == pytest.approx(2.0)
    assert result.values[1] == pytest.approx(6.0)


def test_lp_detects_infeasibility_with_fixed_variables():
    c = np.array([1.0, 1.0])
    a = np.array([[1.0, 1.0]])
    b = np.array([1.0])
    result = solve_lp(c, a, b, fixed={0: 1.0, 1: 1.0})
    assert result.status is LPStatus.INFEASIBLE


def test_lp_matches_scipy_on_random_problems():
    from scipy.optimize import linprog
    rng = np.random.default_rng(42)
    for _ in range(20):
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 8))
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = rng.normal(size=m) + 1.0
        a_full = np.vstack([a, np.eye(n)])
        b_full = np.concatenate([b, np.full(n, 5.0)])
        mine = solve_lp(c, a_full, b_full)
        reference = linprog(c, A_ub=a_full, b_ub=b_full, bounds=(0, None),
                            method="highs")
        if reference.status == 2:
            assert mine.status is LPStatus.INFEASIBLE
        else:
            assert mine.status is LPStatus.OPTIMAL
            assert mine.objective == pytest.approx(reference.fun, abs=1e-6)


def test_ilp_solution_is_integral_and_feasible():
    model = make_model()
    problem = build_placement_ilp(model, r_spare=256, x_limit=1.3)
    result = solve_ilp(problem)
    assert result.values is not None
    ram = set(solution_to_ram_set(problem, result.values))
    for index in problem.branch_vars:
        assert abs(result.values[index] - round(result.values[index])) < 1e-6
    assert model.is_feasible(ram, 256, 1.3)


def test_ilp_matches_exhaustive_optimum_on_small_instance():
    model = make_model()
    # Restrict to the six most significant blocks so brute force is exact.
    from repro.placement.solvers.exhaustive import significant_blocks
    keys = significant_blocks(model, 6)
    small_params = {k: model.parameters[k] for k in model.parameters}
    small_model = PlacementCostModel(small_params, model.e_flash, model.e_ram)
    best = exhaustive_best_placement(small_model, r_spare=200, x_limit=1.5,
                                     blocks=keys)
    problem = build_placement_ilp(small_model, r_spare=200, x_limit=1.5)
    result = solve_ilp(problem)
    ram = set(solution_to_ram_set(problem, result.values))
    ilp_energy = small_model.evaluate(ram).energy_j
    brute_energy = small_model.evaluate(best).energy_j
    # The ILP considers more blocks than the brute force, so it can only be
    # at least as good.
    assert ilp_energy <= brute_energy + 1e-12


def test_ilp_respects_ram_constraint():
    model = make_model()
    problem = build_placement_ilp(model, r_spare=16, x_limit=2.0)
    result = solve_ilp(problem)
    ram = set(solution_to_ram_set(problem, result.values))
    assert model.evaluate(ram).ram_bytes <= 16


def test_ilp_respects_time_constraint():
    model = make_model()
    problem = build_placement_ilp(model, r_spare=4096, x_limit=1.0)
    result = solve_ilp(problem)
    ram = set(solution_to_ram_set(problem, result.values))
    assert model.evaluate(ram).time_ratio <= 1.0 + 1e-9


def test_greedy_is_feasible_but_not_better_than_ilp():
    model = make_model()
    greedy = greedy_placement(model, r_spare=256, x_limit=1.3)
    assert model.is_feasible(greedy, 256, 1.3)
    problem = build_placement_ilp(model, r_spare=256, x_limit=1.3)
    ilp = set(solution_to_ram_set(problem, solve_ilp(problem).values))
    assert model.evaluate(ilp).energy_j <= model.evaluate(greedy).energy_j + 1e-12


def test_greedy_energy_never_below_ilp_across_knobs():
    # The ILP is optimal on the same model, so the heuristic's modelled
    # energy can never be lower, for any (R_spare, X_limit) combination.
    model = make_model()
    for r_spare, x_limit in [(64, 1.1), (128, 1.5), (256, 2.0), (4096, 1.05)]:
        greedy = greedy_placement(model, r_spare=r_spare, x_limit=x_limit)
        problem = build_placement_ilp(model, r_spare=r_spare, x_limit=x_limit)
        result = solve_ilp(problem)
        ilp = set(solution_to_ram_set(problem, result.values))
        assert (model.evaluate(ilp).energy_j
                <= model.evaluate(greedy).energy_j + 1e-12), (r_spare, x_limit)


def test_greedy_incremental_matches_full_evaluation():
    model = make_model()
    for r_spare, x_limit in [(64, 1.1), (256, 1.3), (4096, 2.0)]:
        fast = greedy_placement(model, r_spare, x_limit, incremental=True)
        full = greedy_placement(model, r_spare, x_limit, incremental=False)
        assert fast == full, (r_spare, x_limit)


def test_ilp_incumbent_values_are_exactly_integral():
    # Integral incumbents must be snapped onto the 0/1 lattice: raw LP noise
    # (tiny negative or 1+epsilon components) must not leak into the result.
    model = make_model()
    problem = build_placement_ilp(model, r_spare=256, x_limit=1.3)
    result = solve_ilp(problem)
    assert result.values is not None
    for index in problem.branch_vars:
        assert float(result.values[index]) in (0.0, 1.0)
    assert result.status == "optimal" and result.optimal


def test_ilp_reports_optimal_when_budget_exhausts_with_closed_heap():
    # Even when max_nodes stops the search, an incumbent is optimal as soon
    # as every remaining open node's bound is at least its objective.
    # min -2*x0 - x1  s.t.  2x0 + 2x1 <= 3,  x binary.  The search expands
    # the fractional root, one fractional child, and the integral optimum
    # (1, 0) at objective -2; at max_nodes=3 the heap still holds an open
    # node bounded at -1 >= -2, so the incumbent is provably optimal.
    from repro.placement.ilp import ILPProblem
    problem = ILPProblem(
        objective=np.array([-2.0, -1.0]),
        constant=0.0,
        a_ub=np.array([[2.0, 2.0], [1.0, 0.0], [0.0, 1.0]]),
        b_ub=np.array([3.0, 1.0, 1.0]),
        var_names=["x0", "x1"],
        branch_vars=[0, 1],
        r_index={"x0": 0, "x1": 1},
    )
    capped = solve_ilp(problem, max_nodes=3)
    assert capped.nodes_explored == 3          # the budget was exhausted
    assert capped.status == "optimal" and capped.optimal
    assert capped.objective == pytest.approx(-2.0)
    assert list(capped.values) == [1.0, 0.0]   # exactly on the 0/1 lattice

    # With a budget too small to close the gap the claim must stay modest.
    assert not solve_ilp(problem, max_nodes=2).optimal


def test_enumeration_size_is_2_to_the_k():
    model = make_model()
    points = list(enumerate_placements(model, max_blocks=5))
    assert len(points) == 2 ** 5


def test_invalid_knobs_rejected():
    model = make_model()
    with pytest.raises(ValueError):
        build_placement_ilp(model, r_spare=-1, x_limit=1.5)
    with pytest.raises(ValueError):
        build_placement_ilp(model, r_spare=100, x_limit=0.9)


# --------------------------------------------------------------------------- #
# Instrumentation costs (Figure 4)
# --------------------------------------------------------------------------- #
def test_instrumentation_costs_have_paper_ordering():
    uncond = instrumentation_overhead(TerminatorKind.UNCONDITIONAL)
    cond = instrumentation_overhead(TerminatorKind.CONDITIONAL)
    short = instrumentation_overhead(TerminatorKind.SHORT_CONDITIONAL)
    fall = instrumentation_overhead(TerminatorKind.FALLTHROUGH)
    ret = instrumentation_overhead(TerminatorKind.RETURN)
    # Returns never need instrumentation.
    assert ret.extra_cycles == 0 and ret.extra_bytes == 0
    # Conditional rewrites are more expensive than unconditional ones, and the
    # fused compare-and-branch form is the most expensive (extra cmp).
    assert cond.extra_cycles > uncond.extra_cycles
    assert short.extra_cycles > cond.extra_cycles
    assert short.extra_bytes > cond.extra_bytes
    assert fall.extra_cycles > 0 and fall.extra_bytes > 0


def test_figure4_table_matches_paper_cycle_counts():
    table = figure4_cost_table()
    for kind, entry in table.items():
        paper, model = entry["paper"], entry["model"]
        # Instrumented cycle counts must match the paper exactly; byte counts
        # may differ slightly because we account literal-pool words.
        assert model.instrumented_cycles == paper.instrumented_cycles, kind
        assert abs(model.extra_bytes - paper.extra_bytes) <= 6, kind


# --------------------------------------------------------------------------- #
# Transformation correctness
# --------------------------------------------------------------------------- #
def test_apply_placement_preserves_results_for_random_subsets():
    import random
    rng = random.Random(1234)
    baseline_program = compile_program()
    expected = Simulator(baseline_program).run().return_value
    params = extract_parameters(baseline_program)
    eligible = [k for k, p in params.items() if p.eligible]
    for trial in range(6):
        program = compile_program()
        subset = [k for k in eligible if rng.random() < 0.4]
        apply_placement(program, subset)
        result = Simulator(program).run()
        assert result.return_value == expected, f"trial {trial}: {subset}"


def test_apply_placement_moves_blocks_to_ram_addresses():
    program = compile_program()
    params = extract_parameters(program)
    eligible = [k for k, p in params.items() if p.eligible][:3]
    apply_placement(program, eligible)
    for key in eligible:
        block = program.find_block(key)
        assert block.section == "ram"
        assert program.ram.contains(block.address)


def test_apply_placement_rejects_library_blocks():
    from repro.transform import TransformError
    source = "float f(float x) { return x + 1.0; } int main(void) { float y = f(1.0); return y; }"
    program = compile_program(source)
    library_keys = [program.block_key(b) for b in program.iter_blocks()
                    if program.functions[b.function_name].is_library]
    with pytest.raises(TransformError):
        apply_placement(program, library_keys[:1])


# --------------------------------------------------------------------------- #
# Optimizer end to end
# --------------------------------------------------------------------------- #
def test_optimizer_end_to_end_reduces_energy_and_power():
    program = compile_program()
    baseline = Simulator(program).run()
    optimized_program = compile_program()
    solution = optimize_program(optimized_program, x_limit=1.5)
    optimized = Simulator(optimized_program).run()
    assert optimized.return_value == baseline.return_value
    assert solution.ram_blocks, "the optimizer should move something"
    assert optimized.energy_j < baseline.energy_j
    assert optimized.average_power_w < baseline.average_power_w
    assert optimized.cycles >= baseline.cycles


def test_optimizer_respects_time_limit_knob():
    program = compile_program()
    baseline = Simulator(program).run()
    optimized_program = compile_program()
    optimize_program(optimized_program, x_limit=1.05)
    optimized = Simulator(optimized_program).run()
    assert optimized.cycles <= baseline.cycles * 1.15  # model estimate + margin


def test_optimizer_with_zero_ram_budget_moves_nothing():
    program = compile_program()
    solution = optimize_program(program, r_spare=0)
    assert solution.ram_blocks == set()


def test_optimizer_profile_mode_runs():
    program = compile_program()
    profile = Simulator(program).run().profile
    optimizer = FlashRAMOptimizer(
        compile_program(), config=PlacementConfig(frequency_mode="profile"))
    solution = optimizer.optimize(profile=profile)
    assert solution.estimate is not None


def test_derive_r_spare_uses_byte_units_end_to_end():
    # Regression for a historical bug that divided the byte-denominated
    # stack_reserve by 4 (a spurious byte->word conversion).  All terms are
    # bytes: 8 KB RAM - 128 B globals (int data[32]) - (8 B worst-case
    # stack + 1024 B stack reserve) - 64 B safety margin = 6968 B.
    program = compile_program()
    optimizer = FlashRAMOptimizer(program)
    assert optimizer.derive_r_spare() == 6968

    # The reserve must flow through unscaled: growing it by N bytes shrinks
    # R_spare by exactly N.
    bigger = FlashRAMOptimizer(compile_program(),
                               config=PlacementConfig(stack_reserve=1024 + 512))
    assert bigger.derive_r_spare() == 6968 - 512


def test_solution_reports_predictions():
    program = compile_program()
    solution = optimize_program(program, x_limit=1.5)
    assert 0.0 <= solution.predicted_energy_reduction < 1.0
    assert solution.predicted_time_increase >= 0.0
    assert solution.r_spare > 0
