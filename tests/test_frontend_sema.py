"""Semantic-analysis unit tests."""

import pytest

from repro.frontend.parser import parse_program
from repro.frontend.sema import SemanticError, analyze
from repro.frontend.types import FLOAT, INT, UINT, ArrayType


def analyze_source(source):
    program = parse_program(source)
    return program, analyze(program)


def test_global_initializers_are_evaluated():
    _, symbols = analyze_source("""
        int a = 2 + 3 * 4;
        const int table[3] = {1, 1 << 4, 7 % 3};
        float pi = 3.5;
    """)
    assert symbols.globals["a"].init_values == [14.0]
    assert symbols.globals["table"].init_values == [1.0, 16.0, 1.0]
    assert symbols.globals["pi"].init_values == [3.5]


def test_expression_types_are_annotated():
    program, _ = analyze_source("""
        int f(int x, unsigned u, float g) {
            int a = x + 1;
            unsigned b = u + 1;
            float c = g + 1.0;
            return a;
        }
    """)
    body = program.functions[0].body.statements
    assert body[0].init.ty == INT
    assert body[1].init.ty == UINT
    assert body[2].init.ty == FLOAT


def test_unknown_identifier_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(void) { return missing; }")


def test_unknown_function_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(void) { return g(1); }")


def test_wrong_argument_count_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int g(int a) { return a; } int f(void) { return g(1, 2); }")


def test_too_many_parameters_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(int a, int b, int c, int d, int e) { return a; }")


def test_void_function_cannot_return_value():
    with pytest.raises(SemanticError):
        analyze_source("void f(void) { return 1; }")


def test_non_void_function_must_return_value():
    with pytest.raises(SemanticError):
        analyze_source("int f(void) { return; }")


def test_array_cannot_be_assigned():
    with pytest.raises(SemanticError):
        analyze_source("int buf[4]; int f(void) { buf = 3; return 0; }")


def test_subscript_of_scalar_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(int x) { return x[0]; }")


def test_float_modulo_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(float x) { return x % 2; }")


def test_break_outside_loop_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(void) { break; return 0; }")


def test_redefinition_rejected():
    with pytest.raises(SemanticError):
        analyze_source("int f(void) { int a = 1; int a = 2; return a; }")
    with pytest.raises(SemanticError):
        analyze_source("int g(void) { return 0; } int g(void) { return 1; }")


def test_array_parameter_accepts_array_argument_only():
    with pytest.raises(SemanticError):
        analyze_source("""
            int f(int data[]) { return data[0]; }
            int main(void) { return f(3); }
        """)
    # And the valid form is accepted.
    analyze_source("""
        int buf[4];
        int f(int data[]) { return data[0]; }
        int main(void) { return f(buf); }
    """)


def test_unsigned_and_int_mix_promotes_to_unsigned():
    program, _ = analyze_source("unsigned f(unsigned u, int x) { return u + x; }")
    ret = program.functions[0].body.statements[0]
    assert ret.value.ty == UINT


def test_shadowing_in_nested_scopes_allowed():
    analyze_source("""
        int f(int x) {
            int y = 1;
            { int y = 2; x += y; }
            return x + y;
        }
    """)


def test_global_array_requires_positive_length():
    with pytest.raises(SemanticError):
        analyze_source("int buf[0]; int main(void) { return 0; }")
