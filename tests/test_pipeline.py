"""Tests for the pipelined/cached timing model and its sweep axis.

Covers the bitwise-determinism contract (flat runs and flat stores are
byte-identical to pre-axis behaviour), the pipelined simulator semantics
(deterministic, slower than flat without a cache, faster again with one),
the ``TimingSpec`` parser, the ``SweepSpec`` axis round trip, cell-key
stability, and the pipelined placement cost model.
"""

import filecmp
import json
import os

import pytest

from repro.beebs import get_benchmark
from repro.engine import ExperimentEngine, ExperimentSpec, ProgramCache, ResultStore
from repro.evaluation.pipeline import compile_benchmark
from repro.explore import SweepSpec, cell_key, execute_sweep, run_sweep
from repro.explore.sweep import SweepCell
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.sim import Simulator, TimingSpec
from repro.sim.pipeline import TIMING_MODELS

REFERENCE_STORE = os.path.join(os.path.dirname(__file__), "data",
                               "reference_flat_sweep.json")


def simulate(name="crc32", timing_model="flat"):
    program = compile_benchmark(get_benchmark(name), "O2")
    return Simulator(program, timing_model=timing_model).run()


# --------------------------------------------------------------------------- #
# TimingSpec parsing and derived quantities
# --------------------------------------------------------------------------- #

def test_timing_spec_parse_canonical_forms():
    assert TimingSpec.parse("flat").is_flat
    assert TimingSpec.parse("flat").name == "flat"
    pipe = TimingSpec.parse("pipelined")
    assert not pipe.is_flat and not pipe.has_icache
    assert pipe.name == "pipelined"
    cached = TimingSpec.parse("pipelined+icache")
    assert cached.has_icache
    assert cached.name == "pipelined+icache:16x16"
    assert TimingSpec.parse("pipelined+icache:32x8").name == "pipelined+icache:32x8"
    # Parsing a canonical name round-trips.
    for model in TIMING_MODELS:
        spec = TimingSpec.parse(model)
        assert TimingSpec.parse(spec.name) == spec


def test_timing_spec_parse_rejects_bad_input():
    for bad in ("", "turbo", "pipelined+icache:0x16", "pipelined+icache:16x6",
                "pipelined+icache:16", "pipelined+icache:-4x16"):
        with pytest.raises(ValueError):
            TimingSpec.parse(bad)


def test_timing_spec_miss_penalty_scales_with_line_size():
    # One flash wait state per 4-byte fetch in the refill burst.
    assert TimingSpec.parse("pipelined+icache:16x16").miss_penalty == 4
    assert TimingSpec.parse("pipelined+icache:32x8").miss_penalty == 2
    assert TimingSpec.parse("pipelined").miss_penalty == 0


def test_timing_spec_effective_e_flash():
    from repro.sim import EnergyModel
    model = EnergyModel()
    plain = TimingSpec.parse("pipelined")
    assert plain.effective_e_flash(model) == model.e_flash
    cached = TimingSpec.parse("pipelined+icache")
    blended = cached.effective_e_flash(model)
    # The blend sits strictly between the RAM and flash per-instruction costs.
    assert model.e_ram < blended < model.e_flash


# --------------------------------------------------------------------------- #
# Simulator semantics
# --------------------------------------------------------------------------- #

def test_pipelined_models_agree_on_results_and_order_cycles():
    flat = simulate(timing_model="flat")
    pipe = simulate(timing_model="pipelined")
    cached = simulate(timing_model="pipelined+icache")
    # Architectural state is timing-independent.
    assert flat.return_value == pipe.return_value == cached.return_value
    assert flat.instructions == pipe.instructions == cached.instructions
    # Flash wait states + hazards make the uncached pipeline slower than the
    # flat model; an icache absorbs most of the fetch stalls.
    assert pipe.cycles > flat.cycles
    assert cached.cycles < pipe.cycles
    # Icache hits are charged at RAM-fetch power, so energy drops too.
    assert cached.energy_j < pipe.energy_j


def test_pipelined_runs_are_deterministic():
    for model in ("pipelined", "pipelined+icache"):
        first = simulate("2dfir", timing_model=model)
        second = simulate("2dfir", timing_model=model)
        assert first.cycles == second.cycles
        assert repr(first.energy_j) == repr(second.energy_j)


def test_flat_run_unchanged_by_timing_plumbing():
    # A simulator constructed without the argument and one constructed with
    # the explicit default must behave identically (same code path).
    program = compile_benchmark(get_benchmark("crc32"), "O2")
    implicit = Simulator(program).run()
    program = compile_benchmark(get_benchmark("crc32"), "O2")
    explicit = Simulator(program, timing_model="flat").run()
    assert implicit.cycles == explicit.cycles
    assert repr(implicit.energy_j) == repr(explicit.energy_j)


def test_hazard_metadata_present_on_decoded_stream():
    from repro.isa.instructions import Opcode
    from repro.isa.timing import load_dest, registers_read
    program = compile_benchmark(get_benchmark("crc32"), "O2")
    saw_load, saw_reads = False, False
    for function in program.functions.values():
        for block in function.blocks.values():
            for instr in block.instructions:
                if instr.opcode in (Opcode.LDR, Opcode.LDRB):
                    saw_load = saw_load or load_dest(instr) >= 0
                if registers_read(instr):
                    saw_reads = True
    assert saw_load and saw_reads


# --------------------------------------------------------------------------- #
# Sweep axis, cell keys, store bytes
# --------------------------------------------------------------------------- #

def test_sweep_spec_canonicalizes_timing_models():
    spec = SweepSpec(benchmarks=("crc32",), x_limits=(1.5,),
                     timing_models=("flat", "pipelined+icache"))
    assert spec.timing_models == ("flat", "pipelined+icache:16x16")
    assert spec.size == 2  # every other axis is a singleton
    assert spec.size == len(spec.cells())
    # The shorthand and its explicit default geometry are the same identity.
    explicit = SweepSpec(benchmarks=("crc32",), x_limits=(1.5,),
                         timing_models=("flat", "pipelined+icache:16x16"))
    assert [cell.key for cell in spec.cells()] == \
        [cell.key for cell in explicit.cells()]


def test_sweep_meta_roundtrip_with_and_without_axis():
    flat = SweepSpec(benchmarks=("crc32",), x_limits=(1.5,))
    assert "timing_models" not in flat.meta()
    assert SweepSpec.from_meta(flat.meta()) == flat

    mixed = SweepSpec(benchmarks=("crc32",), x_limits=(1.5,),
                      timing_models=("flat", "pipelined"))
    meta = json.loads(json.dumps(mixed.meta()))
    assert meta["timing_models"] == ["flat", "pipelined"]
    assert SweepSpec.from_meta(meta) == mixed


def test_cell_key_flat_omission_keeps_historical_keys():
    base = SweepCell(spec=ExperimentSpec(benchmark="crc32", x_limit=1.5))
    explicit = SweepCell(spec=ExperimentSpec(benchmark="crc32", x_limit=1.5,
                                             timing_model="flat"))
    assert cell_key(base) == cell_key(explicit)
    # The key of the first reference-store cell, pinned: it must never move.
    reference = json.load(open(REFERENCE_STORE))
    assert cell_key(base) == reference["records"][0]["cell_key"]
    pipelined = SweepCell(spec=ExperimentSpec(benchmark="crc32", x_limit=1.5,
                                              timing_model="pipelined"))
    assert cell_key(pipelined) != cell_key(base)


def test_flat_store_bytes_identical_to_reference(tmp_path):
    reference = json.load(open(REFERENCE_STORE))
    sweep = SweepSpec.from_meta(reference["meta"])
    execute_sweep(sweep, store=ResultStore(str(tmp_path)), name="sweep",
                  engine=ExperimentEngine(cache=ProgramCache(), max_workers=1))
    assert filecmp.cmp(str(tmp_path / "sweep.json"), REFERENCE_STORE,
                       shallow=False)


def test_pipelined_sweep_records_tag_timing_model():
    sweep = SweepSpec(benchmarks=("crc32",), x_limits=(1.5,),
                      timing_models=("flat", "pipelined"))
    result = run_sweep(sweep, engine=ExperimentEngine(cache=ProgramCache(),
                                                      max_workers=1))
    by_model = {record.get("timing_model", "flat"): record
                for record in result.records}
    assert set(by_model) == {"flat", "pipelined"}
    assert "timing_model" not in by_model["flat"]  # byte-compat omission
    # The pipelined cost model sees flash wait states, so moving blocks to
    # RAM removes stall cycles: time improves instead of degrading.
    assert by_model["pipelined"]["time_change"] < by_model["flat"]["time_change"]


# --------------------------------------------------------------------------- #
# Placement cost model under pipelined timing
# --------------------------------------------------------------------------- #

def cost_model(timing_model):
    program = ProgramCache().get_benchmark_mutable("crc32", "O2")
    optimizer = FlashRAMOptimizer(
        program, config=PlacementConfig(timing_model=timing_model))
    return optimizer.build_cost_model()


def test_pipelined_cost_model_adds_stall_cycles():
    flat = cost_model("flat")
    pipe = cost_model("pipelined")
    assert pipe.baseline_cycles() > flat.baseline_cycles()
    assert any(p.flash_stall_cycles for p in pipe.parameters.values())
    assert not any(p.flash_stall_cycles for p in flat.parameters.values())


def test_icache_cost_model_discounts_flash_energy():
    pipe = cost_model("pipelined")
    cached = cost_model("pipelined+icache")
    assert cached.e_flash < pipe.e_flash
    assert cached.e_ram == pipe.e_ram


def test_pipelined_placement_end_to_end():
    engine = ExperimentEngine(cache=ProgramCache(), max_workers=1)
    run = engine.run_optimized("crc32", x_limit=2.0, timing_model="pipelined")
    # Placement must respect the time bound under the pipelined clock and
    # still save energy on this kernel.
    assert 1.0 + run.time_change <= 2.0 + 1e-9
    assert run.energy_change < 0
