"""Property-based tests (hypothesis) on core invariants."""

import struct

from hypothesis import given, settings, strategies as st

from repro.analysis import (CFGView, branch_probabilities, compute_dominators,
                            find_natural_loops, immediate_dominators,
                            loop_depths, reachable_blocks)
from repro.frontend.lexer import tokenize
from repro.irgen.lowering import bits_to_float, float_to_bits
from repro.machine.frame import FrameLayout
from repro.passes.constant_folding import evaluate_condition, fold_binop
from repro.placement.cost_model import PlacementCostModel
from repro.placement.parameters import BlockParameters
from tests.conftest import compile_and_run

int32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
small_int = st.integers(min_value=0, max_value=200)


def signed(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


# --------------------------------------------------------------------------- #
# Constant folding matches 32-bit two's-complement semantics
# --------------------------------------------------------------------------- #
@given(int32, int32, st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]))
def test_fold_binop_matches_reference(a, b, op):
    reference = {
        "add": (a + b), "sub": (a - b), "mul": (a * b),
        "and": a & b, "or": a | b, "xor": a ^ b,
    }[op] & 0xFFFFFFFF
    assert fold_binop(op, a, b) == reference


@given(int32, st.integers(min_value=0, max_value=31))
def test_fold_shifts_match_reference(a, amount):
    assert fold_binop("shl", a, amount) == (a << amount) & 0xFFFFFFFF
    assert fold_binop("lshr", a, amount) == (a >> amount)
    assert fold_binop("ashr", a, amount) == (signed(a) >> amount) & 0xFFFFFFFF


@given(int32, int32)
def test_condition_evaluation_consistency(a, b):
    assert evaluate_condition("eq", a, b) == (a == b)
    assert evaluate_condition("lt", a, b) == (signed(a) < signed(b))
    assert evaluate_condition("lo", a, b) == (a < b)
    # Trichotomy.
    assert evaluate_condition("lt", a, b) + evaluate_condition("gt", a, b) + \
        evaluate_condition("eq", a, b) == 1


# --------------------------------------------------------------------------- #
# Float bit conversions round-trip
# --------------------------------------------------------------------------- #
@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_bits_roundtrip(value):
    assert bits_to_float(float_to_bits(value)) == struct.unpack(
        "<f", struct.pack("<f", value))[0]


# --------------------------------------------------------------------------- #
# Lexer never loses or invents tokens for well-formed integer expressions
# --------------------------------------------------------------------------- #
@given(st.lists(small_int, min_size=1, max_size=8))
def test_lexer_token_count_on_sums(values):
    source = " + ".join(str(v) for v in values)
    tokens = tokenize(source)
    # n integers, n-1 plus signs, 1 EOF
    assert len(tokens) == 2 * len(values)


# --------------------------------------------------------------------------- #
# Frame layout invariants
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=64),
                          st.sampled_from([4, 8])), min_size=1, max_size=12))
def test_frame_layout_offsets_do_not_overlap(objects):
    layout = FrameLayout()
    names = []
    for index, (size, align) in enumerate(objects):
        names.append((f"obj{index}", size))
        layout.add(f"obj{index}", size, align)
    intervals = sorted((layout.offset_of(name), layout.offset_of(name) + size)
                       for name, size in names)
    for (start_a, end_a), (start_b, _) in zip(intervals, intervals[1:]):
        assert end_a <= start_b or start_a == start_b  # no overlap
    assert layout.aligned_size() >= max(end for _, end in intervals)
    assert layout.aligned_size() % 8 == 0


# --------------------------------------------------------------------------- #
# Dominator / loop analyses on random CFGs
# --------------------------------------------------------------------------- #
@st.composite
def random_cfg(draw):
    """An arbitrary CFG: entry ``b0``, up to 2 successors per block.

    Deliberately unconstrained — self-loops, unreachable blocks, duplicate
    edges and irreducible regions all occur, which is exactly what the
    dominator and loop analyses must survive.
    """
    count = draw(st.integers(min_value=1, max_value=10))
    names = [f"b{i}" for i in range(count)]
    block_index = st.integers(min_value=0, max_value=count - 1)
    successors = {
        name: [names[i] for i in draw(st.lists(block_index, max_size=2))]
        for name in names
    }
    return CFGView(entry="b0", successors=successors)


@given(random_cfg())
@settings(max_examples=120, deadline=None)
def test_entry_dominates_every_reachable_block(cfg):
    reachable = reachable_blocks(cfg)
    dominators = compute_dominators(cfg)
    assert set(dominators) == reachable  # unreachable blocks are omitted
    assert dominators[cfg.entry] == {cfg.entry}
    for name, doms in dominators.items():
        assert cfg.entry in doms
        assert name in doms            # every block dominates itself
        assert doms <= reachable       # dominators are themselves reachable


@given(random_cfg())
@settings(max_examples=120, deadline=None)
def test_immediate_dominators_form_a_tree_rooted_at_entry(cfg):
    dominators = compute_dominators(cfg)
    idom = immediate_dominators(cfg)
    assert idom[cfg.entry] is None
    for name in idom:
        if name == cfg.entry:
            continue
        parent = idom[name]
        # The parent strictly dominates its child...
        assert parent in dominators[name] - {name}
        # ...and the dominator sets satisfy dom(b) = {b} ∪ dom(idom(b)).
        assert dominators[name] == {name} | dominators[parent]
        # Walking parents reaches the entry without ever revisiting a node.
        seen = {name}
        while name != cfg.entry:
            name = idom[name]
            assert name is not None and name not in seen
            seen.add(name)


@given(random_cfg())
@settings(max_examples=120, deadline=None)
def test_loop_depths_non_negative_and_monotone_into_nests(cfg):
    loops = find_natural_loops(cfg)
    depths = loop_depths(cfg)
    in_any_loop = set().union(*(loop.body for loop in loops)) if loops else set()
    for name, depth in depths.items():
        assert depth >= 0
        if name in in_any_loop:
            assert depth >= 1
        else:
            assert depth == 0
    # Nesting is monotone: blocks of a loop strictly inside another loop sit
    # in (at least) two loop bodies, so their depth exceeds the outer-only
    # blocks' minimum of 1.
    for inner in loops:
        for outer in loops:
            if inner is not outer and inner.body < outer.body:
                for name in inner.body:
                    assert depths[name] >= 2


@given(random_cfg())
@settings(max_examples=120, deadline=None)
def test_branch_probabilities_normalized_per_block(cfg):
    probabilities = branch_probabilities(cfg)
    reachable = reachable_blocks(cfg)
    for name in reachable:
        targets = list(dict.fromkeys(cfg.successors.get(name, [])))
        if not targets:
            continue
        total = sum(probabilities[(name, target)] for target in targets)
        assert abs(total - 1.0) < 1e-9
        assert all(probabilities[(name, target)] > 0.0 for target in targets)


# --------------------------------------------------------------------------- #
# Cost-model invariants on synthetic block graphs
# --------------------------------------------------------------------------- #
@st.composite
def synthetic_parameters(draw):
    count = draw(st.integers(min_value=2, max_value=8))
    params = {}
    keys = [f"f:b{i}" for i in range(count)]
    for i, key in enumerate(keys):
        succs = []
        if i + 1 < count:
            succs.append(keys[i + 1])
        if draw(st.booleans()) and i > 0:
            succs.append(keys[draw(st.integers(min_value=0, max_value=i - 1))])
        params[key] = BlockParameters(
            key=key, function="f", name=f"b{i}",
            size=draw(st.integers(min_value=2, max_value=64)),
            cycles=draw(st.integers(min_value=1, max_value=40)),
            frequency=float(draw(st.integers(min_value=0, max_value=1000))),
            instrument_bytes=draw(st.integers(min_value=0, max_value=12)),
            instrument_cycles=draw(st.integers(min_value=0, max_value=8)),
            ram_stall_cycles=draw(st.integers(min_value=0, max_value=4)),
            successors=succs,
        )
    return params


@given(synthetic_parameters(), st.sets(st.integers(min_value=0, max_value=7)))
@settings(max_examples=60, deadline=None)
def test_cost_model_invariants(params, subset_indices):
    model = PlacementCostModel(params, e_flash=2.0, e_ram=1.0)
    keys = list(params)
    ram = {keys[i] for i in subset_indices if i < len(keys)}
    estimate = model.evaluate(ram)
    baseline = model.evaluate(set())
    # Execution never gets faster by moving code to RAM in this machine model.
    assert estimate.cycles >= baseline.cycles - 1e-9
    assert estimate.time_ratio >= 1.0 - 1e-9
    # RAM usage is monotone in the placement and zero for the empty placement.
    assert baseline.ram_bytes == 0
    assert estimate.ram_bytes >= 0
    # Energy is bounded below by running everything from RAM with no overheads.
    lower_bound = sum(p.cycles * p.frequency for p in params.values()) * 1.0
    assert estimate.energy_j >= lower_bound - 1e-9
    # Instrumented blocks are exactly those with a cross-memory successor.
    for key, p in params.items():
        crosses = any((succ in ram) != (key in ram) for succ in p.successors)
        assert (key in estimate.instrumented) == crosses


# --------------------------------------------------------------------------- #
# Compiled arithmetic agrees with Python for random expressions
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=15, deadline=None)
def test_compiled_expression_matches_python(a, b, c):
    expected = (a * b + c) - (a - b) * 2 + (a + c) // c
    source = f"""
        int main(void) {{
            int a = {a}; int b = {b}; int c = {c};
            return (a * b + c) - (a - b) * 2 + (a + c) / c;
        }}
    """
    # C division truncates toward zero; Python floors — align the reference.
    quotient = int((a + c) / c)
    expected = (a * b + c) - (a - b) * 2 + quotient
    assert compile_and_run(source, "O1").signed_return_value == expected
