"""Documentation gates: docstrings everywhere, and docs that execute.

Three guarantees, enforced on every run of the tier-1 suite:

* every ``repro.*`` package (and every module inside them) imports cleanly
  and carries a non-trivial module docstring;
* the most-used entry points — the names the README and DESIGN.md tell
  people to call — document themselves;
* the runnable examples embedded in README.md and DESIGN.md actually run
  (``doctest`` over the ``>>>`` fences), so the docs cannot silently rot.
"""

import doctest
import importlib
import os
import pkgutil

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Minimum docstring length: long enough to force a real sentence, short
#: enough not to police style.
MIN_DOC = 20


def iter_module_names():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("name", iter_module_names())
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) >= MIN_DOC, \
        f"{name} has no module docstring"


#: The public faces of the system: every name the README/DESIGN walkthroughs
#: tell people to use must explain itself.
ENTRY_POINTS = [
    ("repro.codegen", "compile_source"),
    ("repro.codegen", "CompileOptions"),
    ("repro.sim", "Simulator"),
    ("repro.sim", "EnergyModel"),
    ("repro.sim", "TimingSpec"),
    ("repro.sim.pipeline", "run_pipelined"),
    ("repro.placement", "FlashRAMOptimizer"),
    ("repro.placement", "PlacementConfig"),
    ("repro.engine", "ExperimentEngine"),
    ("repro.engine", "ExperimentSpec"),
    ("repro.engine", "ProgramCache"),
    ("repro.engine", "ResultStore"),
    ("repro.explore", "SweepSpec"),
    ("repro.explore", "execute_sweep"),
    ("repro.explore", "run_sweep"),
    ("repro.explore", "sweep_report"),
    ("repro.explore", "mark_pareto"),
    ("repro.explore", "cell_key"),
    ("repro.distrib", "SweepCoordinator"),
    ("repro.distrib", "SweepService"),
    ("repro.distrib", "run_worker"),
    ("repro.distrib", "adaptive_batch"),
    ("repro.distrib", "schedule_score"),
    ("repro.distrib", "submit_sweep"),
    ("repro.distrib", "sweep_status"),
    ("repro.distrib", "cancel_sweep"),
    ("repro.telemetry", "Telemetry"),
    ("repro.telemetry", "configure_telemetry"),
    ("repro.telemetry", "RateEwma"),
    ("repro.telemetry", "render_prometheus"),
    ("repro.telemetry", "trace_stats"),
    ("repro.telemetry", "render_trace_stats"),
    ("repro.evaluation.exploration", "exploration_sweep"),
    ("repro.analysis", "verify_machine_program"),
]


@pytest.mark.parametrize("module_name,attr",
                         ENTRY_POINTS, ids=[f"{m}.{a}" for m, a in ENTRY_POINTS])
def test_entry_point_has_docstring(module_name, attr):
    obj = getattr(importlib.import_module(module_name), attr)
    assert obj.__doc__ and len(obj.__doc__.strip()) >= MIN_DOC, \
        f"{module_name}.{attr} has no docstring"


@pytest.mark.parametrize("filename", ["README.md", "DESIGN.md"])
def test_markdown_doctests_execute(filename):
    path = os.path.join(REPO_ROOT, filename)
    results = doctest.testfile(path, module_relative=False, verbose=False)
    assert results.attempted > 0, f"{filename} has no executable examples"
    assert results.failed == 0, f"{filename}: {results.failed} doctest failures"


def test_timing_spec_class_doctests():
    """The TimingSpec docstring examples are themselves executable."""
    import repro.sim.pipeline as pipeline
    results = doctest.testmod(pipeline, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0
