"""Tests for the LP engines: bounded revised simplex vs the dense oracle.

The bounded-variable engine (`solve_bounded_lp`) is fuzzed against the dense
two-phase tableau (`solve_lp_dense`, the oracle) on randomly generated
problems, its dual-simplex warm start is checked to agree with cold solves
after bound tightenings, and the branch-and-bound integration is checked to
pick bitwise-identical RAM sets warm and cold across the placement
regression corpus.
"""

import numpy as np
import pytest

from repro.codegen import CompileOptions, compile_source
from repro.placement import (
    FlashRAMOptimizer,
    PlacementConfig,
    PlacementCostModel,
    build_placement_ilp,
    extract_parameters,
)
from repro.placement.ilp import ILPProblem, solution_to_ram_set
from repro.placement.parameters import BlockParameters
from repro.placement.solvers.branch_and_bound import ILPResult, solve_ilp
from repro.placement.solvers.lp import (
    LPResult,
    LPStatus,
    _remove_artificials,
    solve_bounded_lp,
    solve_lp,
    solve_lp_dense,
)
from repro.sim import EnergyModel

LOOP_SOURCE = """
int data[32];
int main(void) {
    for (int i = 0; i < 32; ++i) { data[i] = i; }
    int total = 0;
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 32; ++i) {
            total += data[i] * round;
        }
        if (total > 100000) { total -= 100000; }
    }
    return total;
}
"""


def make_model():
    program = compile_source(LOOP_SOURCE, CompileOptions.for_level("O2"))
    params = extract_parameters(program)
    energy = EnergyModel()
    return PlacementCostModel(params, energy.e_flash, energy.e_ram)


def materialize_bounds(a, b, lower, upper):
    """Append ``x <= u`` / ``-x <= -l`` rows for the dense oracle."""
    n = a.shape[1]
    rows, rhs = [a], [b]
    finite = np.where(np.isfinite(upper))[0]
    if finite.size:
        block = np.zeros((finite.size, n))
        block[np.arange(finite.size), finite] = 1.0
        rows.append(block)
        rhs.append(upper[finite])
    positive = np.where(lower > 0)[0]
    if positive.size:
        block = np.zeros((positive.size, n))
        block[np.arange(positive.size), positive] = -1.0
        rows.append(block)
        rhs.append(-lower[positive])
    return np.vstack(rows), np.concatenate(rhs)


# --------------------------------------------------------------------------- #
# Bounded engine vs the dense oracle (fuzz)
# --------------------------------------------------------------------------- #
def test_bounded_engine_matches_dense_oracle_on_random_problems():
    rng = np.random.default_rng(2024)
    agreements = 0
    for trial in range(200):
        n = int(rng.integers(2, 8))
        m = int(rng.integers(1, 10))
        c = rng.normal(size=n) * 10.0 ** float(rng.integers(-3, 3))
        a = rng.normal(size=(m, n))
        b = rng.normal(size=m) + 0.5
        upper = np.where(rng.random(n) < 0.6,
                         rng.uniform(0.3, 4.0, size=n), np.inf)
        lower = np.where(rng.random(n) < 0.3,
                         rng.uniform(0.0, 0.25, size=n), 0.0)
        lower = np.minimum(lower, upper)
        if rng.random() < 0.3:  # occasionally fix a variable (branching shape)
            j = int(rng.integers(n))
            lower[j] = upper[j] = float(np.clip(rng.uniform(0, 1),
                                                lower[j], upper[j]))
        mine = solve_bounded_lp(c, a, b, lower=lower, upper=upper)
        dense_a, dense_b = materialize_bounds(a, b, lower, upper)
        oracle = solve_lp_dense(c, dense_a, dense_b)
        if oracle.status is LPStatus.ITERATION_LIMIT:
            continue
        # The oracle cannot represent unbounded-below-with-infinite-upper any
        # differently, so statuses must agree exactly.
        assert mine.status is oracle.status, trial
        if oracle.status is LPStatus.OPTIMAL:
            agreements += 1
            assert mine.objective == pytest.approx(
                oracle.objective, abs=1e-6 * (1.0 + abs(oracle.objective))), trial
    assert agreements >= 80  # plenty of the random draws are feasible


def test_warm_start_agrees_with_cold_solve_after_bound_tightening():
    rng = np.random.default_rng(99)
    checked = warm_pivots = cold_pivots = 0
    for trial in range(120):
        n = int(rng.integers(3, 9))
        m = int(rng.integers(2, 10))
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = rng.normal(size=m) + 1.0
        upper = rng.uniform(0.5, 3.0, size=n)
        parent = solve_bounded_lp(c, a, b, upper=upper)
        if parent.status is not LPStatus.OPTIMAL:
            continue
        assert parent.basis is not None and parent.at_upper is not None
        j = int(rng.integers(n))
        lower = np.zeros(n)
        tight_upper = upper.copy()
        lower[j] = tight_upper[j] = 0.0 if rng.random() < 0.5 else upper[j]
        warm = solve_bounded_lp(c, a, b, lower=lower, upper=tight_upper,
                                basis=parent.basis, at_upper=parent.at_upper)
        cold = solve_bounded_lp(c, a, b, lower=lower, upper=tight_upper)
        assert warm.status is cold.status, trial
        if warm.status is LPStatus.OPTIMAL:
            checked += 1
            warm_pivots += warm.iterations
            cold_pivots += cold.iterations
            assert warm.objective == pytest.approx(
                cold.objective, abs=1e-6 * (1.0 + abs(cold.objective))), trial
    assert checked >= 60
    # The whole point of the warm start: far fewer pivots than a cold solve.
    assert warm_pivots < cold_pivots


def test_bounded_engine_solves_textbook_problem_with_native_bounds():
    # min -3x - 5y  s.t.  3x + 2y <= 18,  0 <= x <= 4,  0 <= y <= 6.
    c = np.array([-3.0, -5.0])
    a = np.array([[3.0, 2.0]])
    b = np.array([18.0])
    result = solve_bounded_lp(c, a, b, upper=np.array([4.0, 6.0]))
    assert result.status is LPStatus.OPTIMAL
    assert result.objective == pytest.approx(-36.0)
    assert result.values[0] == pytest.approx(2.0)
    assert result.values[1] == pytest.approx(6.0)
    assert result.basis is not None and result.basis.shape == (1,)


def test_solve_lp_fixed_via_bounds_matches_historical_behaviour():
    c = np.array([1.0, 1.0])
    a = np.array([[1.0, 1.0]])
    b = np.array([1.0])
    assert solve_lp(c, a, b, fixed={0: 1.0, 1: 1.0}).status is LPStatus.INFEASIBLE
    partial = solve_lp(c, a, b, fixed={0: 0.25})
    assert partial.status is LPStatus.OPTIMAL
    assert partial.values[0] == pytest.approx(0.25)


def test_bounded_engine_reports_iteration_limit():
    rng = np.random.default_rng(1)
    c = rng.normal(size=12)
    a = rng.normal(size=(18, 12))
    b = rng.normal(size=18) + 1.0
    limited = solve_bounded_lp(c, a, b, upper=np.full(12, 2.0),
                               max_iterations=1)
    assert limited.status is LPStatus.ITERATION_LIMIT


def test_degenerate_cycling_problem_terminates_optimal():
    # Beale's classic cycling example: Dantzig pricing with naive tie-breaks
    # cycles forever in exact arithmetic; the degenerate-streak Bland
    # fallback must terminate at the optimum -1/20.
    c = np.array([-0.75, 150.0, -0.02, 6.0])
    a = np.array([
        [0.25, -60.0, -0.04, 9.0],
        [0.5, -90.0, -0.02, 3.0],
        [0.0, 0.0, 1.0, 0.0],
    ])
    b = np.array([0.0, 0.0, 1.0])
    dense = solve_lp_dense(c, a, b)
    assert dense.status is LPStatus.OPTIMAL
    assert dense.objective == pytest.approx(-0.05)
    bounded = solve_bounded_lp(c, a, b)
    assert bounded.status is LPStatus.OPTIMAL
    assert bounded.objective == pytest.approx(-0.05)


# --------------------------------------------------------------------------- #
# Dense-oracle phase-1 cleanup (redundant rows)
# --------------------------------------------------------------------------- #
def test_dense_solver_exact_on_duplicated_constraints():
    # Regression for the phase-1 artificial cleanup: duplicated >= rows make
    # the constraint system redundant, which historically could strand an
    # artificial variable in the basis and corrupt the recovered values via
    # ``remap.get(b, 0)``.  min x0 + 2 x1 s.t. x0 + x1 >= 2 (three copies),
    # x0 <= 1.5: optimum sits at x = (1.5, 0.5), objective 2.5.
    c = np.array([1.0, 2.0])
    a = np.array([
        [-1.0, -1.0],
        [-1.0, -1.0],
        [-1.0, -1.0],
        [1.0, 0.0],
    ])
    b = np.array([-2.0, -2.0, -2.0, 1.5])
    result = solve_lp_dense(c, a, b)
    assert result.status is LPStatus.OPTIMAL
    assert result.objective == pytest.approx(2.5)
    assert result.values == pytest.approx(np.array([1.5, 0.5]))
    # And the bounded engine agrees on the duplicated system.
    bounded = solve_bounded_lp(c, a, b)
    assert bounded.status is LPStatus.OPTIMAL
    assert bounded.objective == pytest.approx(2.5)


def test_remove_artificials_drops_redundant_row_instead_of_corrupting():
    # White-box check of the cleanup itself.  Columns: x0 | s0 s1 | a0 | RHS
    # (1 structural, 2 slacks, 1 artificial).  Row 1 is a fully redundant
    # row whose artificial is basic and has no nonzero real coefficient, so
    # no drive-out pivot exists.  The historical ``remap.get(b, 0)`` mapped
    # its basis entry onto column 0, silently overwriting x0's value with
    # this row's RHS; the fix drops the row.
    tableau = np.array([
        [1.0, 0.5, 0.0, 0.0, 2.0],
        [0.0, 0.0, 0.0, 1.0, 0.0],
    ])
    basis = np.array([0, 3])
    reduced, new_basis, num_rows = _remove_artificials(
        tableau, basis, num_free=1, num_slack=2, artificial_cols=[3])
    assert num_rows == 1
    assert list(new_basis) == [0]
    assert reduced.shape == (1, 4)  # artificial column removed, RHS kept
    assert reduced[0, -1] == pytest.approx(2.0)


def test_remove_artificials_still_drives_out_when_possible():
    # An artificial basic on a row that *does* have a real coefficient must
    # be pivoted out, not dropped: the row carries information (s1 = 0).
    tableau = np.array([
        [1.0, 0.5, 0.0, 0.0, 2.0],
        [0.0, 0.0, -1.0, 1.0, 0.0],
    ])
    basis = np.array([0, 3])
    reduced, new_basis, num_rows = _remove_artificials(
        tableau, basis, num_free=1, num_slack=2, artificial_cols=[3])
    assert num_rows == 2
    assert list(new_basis) == [0, 2]  # s1 replaced the artificial


# --------------------------------------------------------------------------- #
# Branch and bound: warm == cold on the placement corpus
# --------------------------------------------------------------------------- #
def test_warm_and_cold_ilp_pick_identical_ram_sets_on_regression_corpus():
    model = make_model()
    for r_spare, x_limit in [(64, 1.1), (256, 1.3), (4096, 2.0)]:
        problem = build_placement_ilp(model, r_spare, x_limit)
        cold = solve_ilp(problem, warm_start=False)
        warm = solve_ilp(problem, warm_start=True)
        assert cold.status == warm.status, (r_spare, x_limit)
        assert cold.values is not None and warm.values is not None
        cold_ram = set(solution_to_ram_set(problem, cold.values))
        warm_ram = set(solution_to_ram_set(problem, warm.values))
        assert cold_ram == warm_ram, (r_spare, x_limit)
        assert warm.warm_solves + warm.cold_solves > 0
        assert cold.warm_solves == 0  # the oracle path never warm-starts
        # Both engines report real pivot work through the stats plumbing.
        assert cold.lp_pivots > 0 and warm.lp_pivots > 0


@pytest.mark.parametrize("kernel", ["crc32", "fdct"])
def test_warm_and_cold_ilp_agree_on_beebs_kernels(kernel):
    from repro.engine import default_cache
    program = default_cache().get_benchmark_mutable(kernel, "O2")
    optimizer = FlashRAMOptimizer(program, config=PlacementConfig())
    model = optimizer.build_cost_model()
    r_spare = optimizer.derive_r_spare()
    for x_limit in (1.1, 1.5):
        problem = build_placement_ilp(model, r_spare, x_limit)
        cold = solve_ilp(problem, warm_start=False)
        warm = solve_ilp(problem, warm_start=True)
        assert cold.status == warm.status == "optimal", (kernel, x_limit)
        assert (set(solution_to_ram_set(problem, cold.values))
                == set(solution_to_ram_set(problem, warm.values))), (kernel, x_limit)


def test_placement_ilp_carries_native_bounds_not_rows():
    model = make_model()
    problem = build_placement_ilp(model, r_spare=256, x_limit=1.3)
    assert problem.lower is not None and problem.upper is not None
    assert np.all(problem.upper == 1.0) and np.all(problem.lower == 0.0)
    # No constraint row is a plain single-variable upper bound any more.
    for row, rhs in zip(problem.a_ub, problem.b_ub):
        nonzero = np.nonzero(row)[0]
        assert not (nonzero.size == 1 and row[nonzero[0]] == 1.0
                    and rhs == 1.0), "bound row leaked into the matrix"
    # dense_rows() reconstructs them for engines without native bounds.
    dense_a, dense_b = problem.dense_rows()
    assert dense_a.shape[0] == problem.a_ub.shape[0] + problem.num_vars


def test_library_successor_rows_are_deduplicated():
    # A block with several library successors historically emitted one
    # identical ``i_b >= r_b`` row per successor; they must collapse to one.
    params = {
        "f:a": BlockParameters("f:a", "f", "a", 10, 5, 1.0, 4, 4, 0,
                               ["lib:x", "lib:y", "lib:x"]),
        "lib:x": BlockParameters("lib:x", "lib", "x", 10, 5, 1.0, 4, 4, 0,
                                 [], library=True),
        "lib:y": BlockParameters("lib:y", "lib", "y", 10, 5, 1.0, 4, 4, 0,
                                 [], library=True),
    }
    model = PlacementCostModel(params, 2.0, 1.0)
    problem = build_placement_ilp(model, r_spare=64, x_limit=2.0)
    rows = {tuple(row) + (rhs,) for row, rhs in zip(problem.a_ub, problem.b_ub)}
    assert len(rows) == problem.a_ub.shape[0], "duplicate constraint rows"


def test_iteration_limited_child_forfeits_optimality_proof(monkeypatch):
    # min -2x0 - x1  s.t.  2x0 + 2x1 <= 3,  x binary: the optimum (1, 0)
    # lives in a "fix to 0" subtree.  If those children's LPs give up, the
    # solver must keep them as open nodes and report a modest "feasible" —
    # the historical behaviour skipped them like infeasible children and
    # claimed "optimal" for the wrong incumbent.
    problem = ILPProblem(
        objective=np.array([-2.0, -1.0]),
        constant=0.0,
        a_ub=np.array([[2.0, 2.0]]),
        b_ub=np.array([3.0]),
        var_names=["x0", "x1"],
        branch_vars=[0, 1],
        r_index={"x0": 0, "x1": 1},
        lower=np.zeros(2),
        upper=np.ones(2),
    )
    import repro.placement.solvers.branch_and_bound as bb
    real_solve = bb.solve_bounded_lp

    def flaky_solve(c, a_ub, b_ub, lower=None, upper=None, **kwargs):
        if upper is not None and np.asarray(upper)[1] == 0.0:
            return LPResult(LPStatus.ITERATION_LIMIT)
        return real_solve(c, a_ub, b_ub, lower=lower, upper=upper, **kwargs)

    monkeypatch.setattr(bb, "solve_bounded_lp", flaky_solve)
    result = solve_ilp(problem, warm_start=True)
    assert result.unresolved_nodes >= 1
    assert result.status == "feasible"
    assert not result.optimal
    # The reachable incumbent (0, 1) is *worse* than the optimum hidden in
    # the unresolved subtree — exactly why claiming "optimal" would be wrong.
    assert result.objective == pytest.approx(-1.0)
    # Without interference the same problem is solved to proven optimality.
    monkeypatch.setattr(bb, "solve_bounded_lp", real_solve)
    clean = solve_ilp(problem, warm_start=True)
    assert clean.status == "optimal" and clean.objective == pytest.approx(-2.0)
    assert clean.unresolved_nodes == 0


def test_optimizer_reports_fallback_empty_when_solver_gives_up(monkeypatch):
    import repro.placement.optimizer as optimizer_module
    program = compile_source(LOOP_SOURCE, CompileOptions.for_level("O2"))
    optimizer = FlashRAMOptimizer(program)

    def give_up(problem, max_nodes=400, warm_start=True, **kwargs):
        return ILPResult(status="iteration_limit")

    monkeypatch.setattr(optimizer_module, "solve_ilp", give_up)
    solution = optimizer.select_blocks()
    assert solution.solver_status == "fallback-empty:iteration_limit"
    assert solution.ram_blocks == set()
    # The empty placement is genuinely feasible: the estimate is the baseline.
    assert solution.estimate.energy_j == pytest.approx(solution.baseline_energy_j)


def test_optimizer_surfaces_solver_stats():
    program = compile_source(LOOP_SOURCE, CompileOptions.for_level("O2"))
    solution = FlashRAMOptimizer(program).select_blocks()
    stats = solution.solver_stats
    assert stats["nodes_explored"] >= 1
    assert stats["lp_pivots"] > 0
    assert stats["cold_solves"] >= 1
    assert stats["unresolved_nodes"] == 0
