"""End-to-end language-feature tests: compile with the full pipeline and run.

Each test asserts the simulated return value of a small program, at both O0
(spill-everything) and O2 (full pipeline), which exercises the frontend,
lowering, passes, instruction selection, register allocation, frame lowering,
layout and the simulator together.
"""

import pytest

from tests.conftest import compile_and_run

LEVELS = ["O0", "O2"]


def expect(source, value, levels=LEVELS):
    for level in levels:
        result = compile_and_run(source, level)
        assert result.signed_return_value == value, f"at {level}"


def test_arithmetic_operators():
    expect("int main(void) { return (7 + 3) * 2 - 5; }", 15)
    expect("int main(void) { return 17 / 5; }", 3)
    expect("int main(void) { return 17 % 5; }", 2)
    expect("int main(void) { return -17 / 5; }", -3)
    expect("int main(void) { return (1 << 10) >> 3; }", 128)


def test_bitwise_operators():
    expect("int main(void) { return (12 & 10) | (1 ^ 3); }", 10)
    expect("int main(void) { return ~0 & 255; }", 255)
    expect("unsigned main(void) { unsigned x = 4294967295; return (x >> 24) & 255; }",
           255)


def test_comparisons_and_logical_operators():
    expect("int main(void) { return (3 < 5) + (5 <= 5) + (7 > 2) + (2 >= 3); }", 3)
    expect("int main(void) { return (1 && 0) + (1 || 0) + !0; }", 2)
    expect("int main(void) { int x = 0; return (x != 0 && 10 / x > 1) ? 1 : 2; }", 2)


def test_signed_vs_unsigned_comparison():
    expect("int main(void) { int a = -1; return a < 1; }", 1)
    expect("int main(void) { unsigned a = 4294967295; return a < 1; }", 0)


def test_if_else_and_ternary():
    expect("""
        int classify(int x) {
            if (x > 10) { return 2; }
            else if (x > 0) { return 1; }
            return 0;
        }
        int main(void) { return classify(20) * 100 + classify(5) * 10 + classify(-3); }
    """, 210)
    expect("int main(void) { int x = 7; return x > 5 ? x * 2 : x; }", 14)


def test_while_for_do_loops():
    expect("""
        int main(void) {
            int total = 0;
            for (int i = 1; i <= 10; ++i) { total += i; }
            int j = 10;
            while (j > 0) { total += 1; j--; }
            int k = 0;
            do { k += 3; } while (k < 10);
            return total * 100 + k;
        }
    """, 6512)


def test_break_and_continue():
    expect("""
        int main(void) {
            int total = 0;
            for (int i = 0; i < 100; ++i) {
                if (i == 10) { break; }
                if (i % 2 == 0) { continue; }
                total += i;
            }
            return total;
        }
    """, 25)


def test_nested_loops_and_arrays():
    expect("""
        int grid[25];
        int main(void) {
            for (int i = 0; i < 5; ++i)
                for (int j = 0; j < 5; ++j)
                    grid[i * 5 + j] = i * j;
            int total = 0;
            for (int k = 0; k < 25; ++k) total += grid[k];
            return total;
        }
    """, 100)


def test_local_arrays_with_initializers():
    expect("""
        int main(void) {
            int weights[4] = {10, 20, 30, 40};
            int total = 0;
            for (int i = 0; i < 4; ++i) { total += weights[i] * (i + 1); }
            return total;
        }
    """, 300)


def test_global_scalars_and_const_tables():
    expect("""
        const int factors[3] = {2, 3, 5};
        int counter = 100;
        int main(void) {
            counter += factors[0] * factors[1] * factors[2];
            return counter;
        }
    """, 130)


def test_function_calls_and_recursion():
    expect("""
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { return fib(12); }
    """, 144)


def test_array_parameters():
    expect("""
        int data[6] = {1, 2, 3, 4, 5, 6};
        int sum(int values[], int count) {
            int total = 0;
            for (int i = 0; i < count; ++i) { total += values[i]; }
            return total;
        }
        int main(void) {
            int local[3] = {7, 8, 9};
            return sum(data, 6) * 100 + sum(local, 3);
        }
    """, 2124)


def test_increment_decrement_semantics():
    expect("""
        int main(void) {
            int x = 5;
            int a = x++;
            int b = ++x;
            int c = x--;
            return a * 100 + b * 10 + c - x;
        }
    """, 5 * 100 + 7 * 10 + 7 - 6)


def test_compound_assignment_on_array_elements():
    expect("""
        int buf[3] = {1, 2, 3};
        int main(void) {
            buf[1] += 10;
            buf[2] *= 4;
            buf[0] <<= 3;
            return buf[0] + buf[1] + buf[2];
        }
    """, 8 + 12 + 12)


def test_void_functions_and_side_effects():
    expect("""
        int counter;
        void bump(int amount) { counter += amount; }
        int main(void) {
            bump(3);
            bump(4);
            return counter;
        }
    """, 7)


def test_float_arithmetic_via_softfloat():
    expect("""
        float area(float radius) { return 3.14159 * radius * radius; }
        int main(void) { return area(10.0); }
    """, 314)
    expect("""
        int main(void) {
            float x = 2.0;
            float y = x / 4.0 + 1.5;   // 2.0
            if (y == 2.0) { return 42; }
            return 0;
        }
    """, 42)


def test_float_comparisons_and_conversion():
    expect("""
        int main(void) {
            float a = -1.5;
            float b = 2.25;
            int less = a < b;
            int conv = b * 4.0;        // 9
            return less * 100 + conv;
        }
    """, 109)


def test_large_constants_via_literal_pool():
    expect("int main(void) { return 123456789 % 1000; }", 789)


def test_deep_expression_register_pressure():
    # Forces spilling at O2 as well (many simultaneously-live values).
    expect("""
        int main(void) {
            int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
            int i = 9, j = 10, k = 11, l = 12, m = 13, n = 14;
            int r = (a*b + c*d) + (e*f + g*h) + (i*j + k*l) + (m*n)
                  + (a+b+c+d+e+f+g+h+i+j+k+l+m+n);
            return r;
        }
    """, (1*2 + 3*4) + (5*6 + 7*8) + (9*10 + 11*12) + 13*14 + sum(range(1, 15)))


def test_results_identical_across_all_levels():
    source = """
        int acc(int n) {
            int s = 0;
            for (int i = 1; i <= n; ++i) {
                if (i % 3 == 0) { s += i * 2; } else { s += i; }
            }
            return s;
        }
        int main(void) { return acc(50); }
    """
    results = {level: compile_and_run(source, level).return_value
               for level in ["O0", "O1", "O2", "O3", "Os"]}
    assert len(set(results.values())) == 1


def test_o2_is_faster_and_smaller_than_o0():
    source = """
        int main(void) {
            int s = 0;
            for (int i = 0; i < 200; ++i) { s += i * 3 + 1; }
            return s;
        }
    """
    o0 = compile_and_run(source, "O0")
    o2 = compile_and_run(source, "O2")
    assert o0.return_value == o2.return_value
    assert o2.cycles < o0.cycles
