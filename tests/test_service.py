"""The multi-sweep service: tenancy, scheduling, cancellation, robustness.

Four contracts layered on top of the single-sweep guarantees that
``test_distrib.py`` pins:

* **concurrent tenants stay byte-identical** — two sweeps submitted to one
  service, drained by one sweep-agnostic fleet (with a worker SIGKILLed
  mid-lease), each produce a store byte-identical to their monolithic
  ``execute_sweep`` references;
* **weighted-fair priority scheduling** — lease hand-out follows
  ``priority / (leased + 1)`` exactly, so the split is deterministic;
* **cancellation drains, compacts, stays mergeable** — pending cells are
  dropped at once, in-flight leases land and are journaled, and the
  compacted partial is a well-formed keyed store;
* **protocol robustness** — version mismatches and malformed / truncated /
  oversized lines cost the *sender* its connection (with a versioned error
  where the socket still works) and never the service: other tenants keep
  running and interrupted leases return to their queues.
"""

import doctest
import json
import multiprocessing
import socket
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.distrib.service
from repro.distrib import (
    PROTOCOL_VERSION,
    ClientError,
    ProtocolError,
    ServiceError,
    SweepService,
    adaptive_batch,
    cancel_sweep,
    connect,
    list_sweeps,
    schedule_score,
    submit_sweep,
    sweep_status,
    wait_for_sweep,
    worker_process_entry,
)
from repro.distrib.protocol import decode_message
from repro.engine import ExperimentEngine, ProgramCache, ResultStore
from repro.explore import SweepSpec, execute_sweep
from repro.telemetry import render_prometheus

#: Two disjoint 2-cell sweeps — the smallest honest multi-tenant workload.
ALPHA = SweepSpec(benchmarks=("crc32",), x_limits=(1.1, 1.5))
BETA = SweepSpec(benchmarks=("fdct",), x_limits=(1.1, 1.5))

SPAWN = multiprocessing.get_context("spawn")


def start_service(**kwargs) -> SweepService:
    kwargs.setdefault("port", 0)
    return SweepService(**kwargs).start()


def spawn_worker(service, **kwargs):
    process = SPAWN.Process(target=worker_process_entry,
                            args=(service.host, service.port),
                            kwargs=kwargs, daemon=True)
    process.start()
    return process


def wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.05)


def fake_worker(service, name):
    """A raw protocol peer — lets tests misbehave in controlled ways."""
    stream = connect(service.host, service.port)
    stream.send({"type": "hello", "version": PROTOCOL_VERSION,
                 "worker": name, "role": "worker"})
    welcome = stream.recv()
    assert welcome["type"] == "welcome"
    assert welcome["version"] == PROTOCOL_VERSION
    return stream


def request(stream):
    stream.send({"type": "request"})
    return stream.recv()


# --------------------------------------------------------------------------- #
# Policy units: adaptive batching and weighted fair share
# --------------------------------------------------------------------------- #
def test_service_module_doctests_execute():
    results = doctest.testmod(repro.distrib.service, verbose=False)
    assert results.attempted > 0 and results.failed == 0


@given(remaining=st.integers(min_value=1, max_value=100_000),
       fleet=st.integers(min_value=0, max_value=64),
       max_batch=st.integers(min_value=1, max_value=64))
@settings(max_examples=200, deadline=None)
def test_adaptive_batch_bounds_hold_for_any_queue_and_fleet(
        remaining, fleet, max_batch):
    cut = adaptive_batch(remaining, fleet, max_batch)
    assert 1 <= cut <= max_batch      # always leases something, never more
    assert cut <= remaining
    # An empty fleet is scheduled as if one worker were about to connect.
    eff_fleet = max(1, fleet)
    tail = repro.distrib.service.TAIL_LEASES_PER_WORKER
    # Deep queues always get the full batch (locality is preserved)...
    if remaining >= eff_fleet * tail * max_batch:
        assert cut == max_batch
    # ...and the final cells are handed out one at a time.
    if remaining <= eff_fleet * tail:
        assert cut == 1


def test_adaptive_batch_empty_queue_and_tail_shape():
    assert adaptive_batch(0, 4, 8) == 0
    assert adaptive_batch(-3, 4, 8) == 0
    # Monotone in remaining: a fuller queue never gets a smaller cut.
    cuts = [adaptive_batch(r, fleet=2, max_batch=4) for r in range(1, 64)]
    assert cuts == sorted(cuts)


def test_priority_three_to_one_lease_split_is_deterministic(tmp_path):
    """With one idle worker, the first four leases split 3:1 by score."""
    service = start_service()
    stream = None
    try:
        service.submit(SweepSpec(benchmarks=("crc32",),
                                 x_limits=(1.1, 1.2, 1.3, 1.4)),
                       "hot", priority=3, batch_size=1)
        service.submit(SweepSpec(benchmarks=("fdct",),
                                 x_limits=(1.1, 1.2, 1.3, 1.4)),
                       "cold", priority=1, batch_size=1)
        stream = fake_worker(service, "idle")
        grants = []
        for _ in range(4):
            lease = request(stream)
            assert lease["type"] == "lease" and len(lease["keys"]) == 1
            grants.append(lease["sweep"])
        # score(hot)=3/1,3/2,3/3 beats score(cold)=1 thrice (ties break to
        # the higher priority); only then does the cold sweep get a turn.
        assert grants == ["hot", "hot", "hot", "cold"]
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()


def test_lease_carries_sweep_name_and_rebuildable_spec():
    service = start_service()
    stream = None
    try:
        service.submit(ALPHA, "alpha", batch_size=1)
        stream = fake_worker(service, "w")
        lease = request(stream)
        assert lease["sweep"] == "alpha"
        rebuilt = SweepSpec.from_meta(
            json.loads(json.dumps(lease["spec"])))
        assert lease["keys"][0] in {c.key for c in rebuilt.cells()}
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()


# --------------------------------------------------------------------------- #
# Concurrent tenants: byte-identical stores, even with a SIGKILLed worker
# --------------------------------------------------------------------------- #
def test_two_concurrent_sweeps_drain_to_byte_identical_stores(tmp_path):
    reference = ResultStore(tmp_path / "ref")
    engine = ExperimentEngine(cache=ProgramCache())
    execute_sweep(ALPHA, store=reference, name="alpha", engine=engine,
                  max_workers=1)
    execute_sweep(BETA, store=reference, name="beta", engine=engine,
                  max_workers=1)

    store = ResultStore(tmp_path / "svc")
    service = start_service(store=store, drain_when_idle=True,
                            checkpoint_every=1)
    victim = fleet = None
    try:
        service.submit(ALPHA, "alpha", priority=2, batch_size=1)
        service.submit(BETA, "beta", batch_size=1)
        # The victim computes its first leased cell, then sleeps ~60 s —
        # a wide-open window in which to SIGKILL it mid-lease.
        victim = spawn_worker(service, name="victim", throttle=60.0)
        wait_until(lambda: any(
            snap["leased"] for snap in service.status_snapshot().values()),
            message="the victim to take a lease")
        victim.kill()
        victim.join(timeout=30.0)
        fleet = spawn_worker(service, name="replacement")
        assert service.wait("alpha", 180.0) and service.wait("beta", 180.0)
        alpha, beta = service.summary("alpha"), service.summary("beta")
    finally:
        service.shutdown()
        for process in (victim, fleet):
            if process is not None:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()

    assert alpha["computed"] == ALPHA.size and beta["computed"] == BETA.size
    # The dropped connection re-queued the victim's batch into whichever
    # sweep it came from.
    assert alpha["distrib"]["requeued_batches"] \
        + beta["distrib"]["requeued_batches"] >= 1
    for name in ("alpha", "beta"):
        assert not store.journal_path(name).exists()
        assert store.path_for(name).read_bytes() == \
            reference.path_for(name).read_bytes()


# --------------------------------------------------------------------------- #
# Cancellation: drain, compact, stay mergeable; other tenants untouched
# --------------------------------------------------------------------------- #
def test_cancel_drains_inflight_lease_and_compacts_partial(tmp_path):
    store = ResultStore(tmp_path / "partial")
    service = start_service(store=store, checkpoint_every=1)
    stream = None
    try:
        job = service.submit(SweepSpec(benchmarks=("crc32",),
                                       x_limits=(1.1, 1.2, 1.3, 1.4)),
                             "doomed", batch_size=1)
        keys = [cell.key for cell in job.cells]
        survivor = service.submit(BETA, "survivor", batch_size=1)

        stream = fake_worker(service, "w")
        first = request(stream)
        done_key = first["keys"][0]
        stream.send({"type": "result", "lease_id": first["lease_id"],
                     "sweep": first["sweep"],
                     "records": [{"cell_key": done_key, "energy": 1.0}]})
        wait_until(lambda: service.status_snapshot(
            first["sweep"])[first["sweep"]]["done"] == 1,
            message="the first fabricated result to land")
        # Leave a second lease in flight, then cancel its sweep.
        second = request(stream)
        snapshot = service.cancel("doomed")
        assert snapshot["status"] in ("cancelling", "cancelled")
        assert service.status_snapshot("doomed")["doomed"]["pending"] == 0

        # The in-flight lease drains: its (fabricated) result is accepted
        # and journaled, then the journal compacts into the partial store.
        inflight_key = second["keys"][0]
        stream.send({"type": "result", "lease_id": second["lease_id"],
                     "sweep": second["sweep"],
                     "records": [{"cell_key": inflight_key, "energy": 2.0}]})
        assert service.wait("doomed", 30.0)
        final = service.status_snapshot("doomed")["doomed"]
        assert final["status"] == "cancelled"
        expected = {key for key in (done_key, inflight_key)
                    if key in set(keys)}
        partial = store.load_keyed("doomed")
        assert set(partial) == expected
        assert not store.journal_path("doomed").exists()
        # Cancelled-sweep residue never leaks into the other tenant.
        assert not survivor.terminal
        assert service.status_snapshot("survivor")["survivor"]["pending"] \
            == BETA.size
        # EWMA throughput was tracked while results were landing.
        assert final["throughput"] is not None and final["throughput"] > 0
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()


def test_cancelled_partial_resumes_to_byte_identical_full_store(tmp_path):
    """cancel → partial keyed store → resume completes it bitwise."""
    spec = ALPHA
    reference = ResultStore(tmp_path / "ref")
    execute_sweep(spec, store=reference, name="part",
                  engine=ExperimentEngine(cache=ProgramCache()),
                  max_workers=1)
    full = reference.load_keyed("part")

    store = ResultStore(tmp_path / "svc")
    service = start_service(store=store, checkpoint_every=1)
    stream = None
    try:
        service.submit(spec, "part", batch_size=1)
        stream = fake_worker(service, "w")
        lease = request(stream)
        key = lease["keys"][0]
        # Report the *real* record for the leased cell, then cancel.
        stream.send({"type": "result", "lease_id": lease["lease_id"],
                     "sweep": "part", "records": [full[key]]})
        wait_until(lambda: service.status_snapshot(
            "part")["part"]["done"] == 1, message="the result to land")
        service.cancel("part")
        assert service.wait("part", 30.0)
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()

    assert set(store.load_keyed("part")) == {key}
    summary = execute_sweep(spec, store=store, name="part", resume=True,
                            engine=ExperimentEngine(cache=ProgramCache()),
                            max_workers=1)
    assert summary["skipped"] == 1
    assert store.path_for("part").read_bytes() == \
        reference.path_for("part").read_bytes()


# --------------------------------------------------------------------------- #
# Admission control and the wire client
# --------------------------------------------------------------------------- #
def test_submit_validates_names_priorities_and_batches(tmp_path):
    service = start_service()
    try:
        service.submit(ALPHA, "taken")
        with pytest.raises(ServiceError, match="already taken"):
            service.submit(BETA, "taken")
        with pytest.raises(ValueError, match="priority"):
            service.submit(BETA, "bad", priority=0)
        with pytest.raises(ValueError, match="batch_size"):
            service.submit(BETA, "bad", batch_size=0)
        with pytest.raises(ServiceError, match="store"):
            service.submit(BETA, "bad", resume=True)
        with pytest.raises(ServiceError, match="no sweep named"):
            service.cancel("never-submitted")
    finally:
        service.shutdown()


def test_rejected_duplicate_submit_leaves_live_journal_intact(tmp_path):
    """A duplicate-name submit must not unlink the live sweep's journal.

    Regression: the stale-journal cleanup used to run *before* the
    name-uniqueness check, so a retrying wire client (lost 'submitted'
    reply) deleted the live sweep's checkpoints and the compacted final
    store silently lost every record journaled before the retry.
    """
    reference = ResultStore(tmp_path / "ref")
    execute_sweep(ALPHA, store=reference, name="alpha",
                  engine=ExperimentEngine(cache=ProgramCache()),
                  max_workers=1)
    full = reference.load_keyed("alpha")

    store = ResultStore(tmp_path / "svc")
    service = start_service(store=store, checkpoint_every=1)
    stream = None
    try:
        service.submit(ALPHA, "alpha", batch_size=1)
        stream = fake_worker(service, "w")
        first = request(stream)
        stream.send({"type": "result", "lease_id": first["lease_id"],
                     "sweep": "alpha",
                     "records": [full[first["keys"][0]]]})
        wait_until(lambda: store.journal_path("alpha").exists(),
                   message="the first journal checkpoint")
        with pytest.raises(ServiceError, match="already taken"):
            service.submit(ALPHA, "alpha")
        assert store.journal_path("alpha").exists()
        second = request(stream)
        stream.send({"type": "result", "lease_id": second["lease_id"],
                     "sweep": "alpha",
                     "records": [full[key] for key in second["keys"]]})
        assert service.wait("alpha", 30.0)
        assert service.summary("alpha")["computed"] == ALPHA.size
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()
    assert store.path_for("alpha").read_bytes() == \
        reference.path_for("alpha").read_bytes()


def test_cells_by_worker_counters_are_per_sweep():
    """summary/job_stats report the sweep's own worker counters, not the
    service-wide aggregate — tenants must not observe each other."""
    service = start_service()
    streams = []
    try:
        for spec, name, worker in ((ALPHA, "alpha", "miner"),
                                   (BETA, "beta", "smith")):
            service.submit(spec, name, batch_size=spec.size,
                           adaptive=False)
            stream = fake_worker(service, worker)
            streams.append(stream)
            lease = request(stream)
            assert lease["sweep"] == name
            stream.send({"type": "result", "lease_id": lease["lease_id"],
                         "sweep": name,
                         "records": [{"cell_key": key, "energy": 1.0}
                                     for key in lease["keys"]]})
            assert service.wait(name, 30.0)
        for name, spec, worker in (("alpha", ALPHA, "miner"),
                                   ("beta", BETA, "smith")):
            stats = service.job_stats(name)["cells_by_worker"]
            summary = service.summary(name)["distrib"]["cells_by_worker"]
            assert stats == summary
            assert sum(stats.values()) == spec.size
            assert all(peer.startswith(worker) for peer in stats)
    finally:
        for stream in streams:
            stream.close()
        service.shutdown()


def test_wire_client_submit_status_list_cancel_roundtrip():
    service = start_service()
    try:
        reply = submit_sweep(service.host, service.port, ALPHA, "wired",
                             priority=2)
        assert reply["cells"] == ALPHA.size and reply["priority"] == 2

        status = sweep_status(service.host, service.port)
        assert status["wired"]["status"] == "running"
        assert status["wired"]["pending"] == ALPHA.size
        assert status["wired"]["eta_seconds"] is None  # no throughput yet

        names = [entry["name"]
                 for entry in list_sweeps(service.host, service.port)]
        assert names == ["wired"]

        # A duplicate wire submit is an error *reply*, not a dead service.
        with pytest.raises(ClientError, match="already taken"):
            submit_sweep(service.host, service.port, ALPHA, "wired")

        snapshot = cancel_sweep(service.host, service.port, "wired")
        assert snapshot["status"] == "cancelled"  # nothing was in flight
        final = wait_for_sweep(service.host, service.port, "wired",
                               timeout=10.0)
        assert final["status"] == "cancelled"
    finally:
        service.shutdown()


def test_wire_submit_honors_store_and_checkpoint_every(tmp_path):
    """The documented optional submit fields are applied, not ignored."""
    service = start_service()  # no service-wide store at all
    stream = None
    try:
        store = ResultStore(tmp_path / "wire")
        submit_sweep(service.host, service.port, ALPHA, "wired",
                     batch_size=1, checkpoint_every=1,
                     store=str(tmp_path / "wire"))
        stream = fake_worker(service, "w")
        first = request(stream)
        stream.send({"type": "result", "lease_id": first["lease_id"],
                     "sweep": "wired",
                     "records": [{"cell_key": first["keys"][0],
                                  "energy": 1.0}]})
        # checkpoint_every=1 into the submitted store directory — a journal
        # appears there after the very first result.
        wait_until(lambda: store.journal_path("wired").exists(),
                   message="a checkpoint in the wire-submitted store")
        second = request(stream)
        stream.send({"type": "result", "lease_id": second["lease_id"],
                     "sweep": "wired",
                     "records": [{"cell_key": key, "energy": 1.0}
                                 for key in second["keys"]]})
        assert service.wait("wired", 30.0)
        assert store.path_for("wired").exists()
        assert not store.journal_path("wired").exists()  # compacted
        # A malformed store path is rejected with the service's own message.
        with pytest.raises(ClientError, match="'store' must be"):
            submit_sweep(service.host, service.port, BETA, "bad-store",
                         store="")
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()


def test_client_reports_unreachable_service_cleanly():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        unused_port = probe.getsockname()[1]
    with pytest.raises(ClientError, match="could not complete"):
        sweep_status("127.0.0.1", unused_port)


# --------------------------------------------------------------------------- #
# Protocol robustness: version negotiation and per-connection containment
# --------------------------------------------------------------------------- #
def test_version_mismatch_fails_loudly_with_versioned_error():
    service = start_service()
    try:
        for bad in (1, None, "two", PROTOCOL_VERSION + 1):
            with connect(service.host, service.port) as stream:
                hello = {"type": "hello", "worker": "old"}
                if bad is not None:
                    hello["version"] = bad
                stream.send(hello)
                reply = stream.recv()
                assert reply["type"] == "error"
                assert reply["version"] == PROTOCOL_VERSION
                assert "protocol version mismatch" in reply["message"]
        # Control verbs also refuse to run before a negotiated hello.
        with connect(service.host, service.port) as stream:
            stream.send({"type": "submit", "sweep": ALPHA.meta(),
                         "name": "sneaky"})
            reply = stream.recv()
            assert reply["type"] == "error"
            assert "version-negotiated" in reply["message"]
        assert service.status_snapshot() == {}  # nothing was admitted
    finally:
        service.shutdown()


def test_result_relabelled_across_sweeps_is_rejected_and_requeued():
    """A leased result is routed by its lease, not the worker's say-so.

    Regression: routing preferred the message's 'sweep' field, so a
    mislabelled result decremented the *wrong* tenant's leased count and
    left the true owner's lease stranded forever (already popped, invisible
    to the reaper) — the owning sweep could hang at 'cancelling' or never
    finish.
    """
    service = start_service()
    stream = None
    try:
        service.submit(ALPHA, "hot", batch_size=1)
        service.submit(BETA, "cold", batch_size=1)
        stream = fake_worker(service, "liar")
        lease = request(stream)
        assert lease["sweep"] == "hot"  # earlier submission wins the tie
        stream.send({"type": "result", "lease_id": lease["lease_id"],
                     "sweep": "cold",
                     "records": [{"cell_key": lease["keys"][0],
                                  "energy": 1.0}]})
        reply = stream.recv()
        assert reply["type"] == "error"
        assert "belongs to sweep 'hot'" in reply["message"]
        # The lease settled on its own sweep: cells back in hot's queue,
        # nothing leaked into cold's counters.
        hot = service.job_stats("hot")
        assert hot["pending"] == ALPHA.size and hot["leased"] == 0
        assert hot["requeued_batches"] == 1 and hot["done"] == 0
        cold = service.job_stats("cold")
        assert cold["pending"] == BETA.size and cold["leased"] == 0
        assert cold["done"] == 0
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()


@given(line=st.text(max_size=200))
@settings(max_examples=300, deadline=None)
def test_decoder_rejects_arbitrary_text_with_protocol_error_only(line):
    """Whatever bytes arrive, decode yields a dict-with-type or one error."""
    try:
        message = decode_message(line)
    except ProtocolError:
        return
    assert isinstance(message, dict) and isinstance(message["type"], str)


GARBAGE_LINES = [
    b"{not json at all\n",
    b'["a", "list", "not", "an", "object"]\n',
    b'{"type": 42}\n',
    b'{"no_type": true}\n',
    b'"just a string"\n',
    b"\xff\xfe\x00garbage bytes\n",
    b'{"type": "launch-missiles"}\n',
]


@pytest.mark.parametrize("garbage", GARBAGE_LINES,
                         ids=[repr(g[:20]) for g in GARBAGE_LINES])
def test_malformed_lines_cost_only_their_own_connection(garbage):
    service = start_service()
    try:
        service.submit(ALPHA, "steady", batch_size=1)
        with socket.create_connection((service.host, service.port),
                                      timeout=10.0) as raw:
            raw.sendall(garbage)
            # The service answers with an error line (when it can still
            # frame one) and drops the connection.
            raw.settimeout(10.0)
            data = raw.recv(65536)
            if data:
                reply = json.loads(data.decode("utf-8").splitlines()[0])
                assert reply["type"] == "error"
        # The service survived: a well-formed client still gets served.
        status = sweep_status(service.host, service.port)
        assert status["steady"]["status"] == "running"
        assert status["steady"]["pending"] == ALPHA.size
    finally:
        service.shutdown()


def test_truncated_and_oversized_lines_do_not_strand_leases(monkeypatch):
    monkeypatch.setattr("repro.distrib.protocol.MAX_LINE_BYTES", 4096)
    service = start_service()
    try:
        job = service.submit(ALPHA, "steady", batch_size=1)
        total = len(job.cells)

        # A worker takes a lease, then sends an oversized line: the
        # connection dies, the lease must return to the queue.
        stream = fake_worker(service, "bloated")
        lease = request(stream)
        assert lease["type"] == "lease"
        wait_until(lambda: service.job_stats("steady")["pending"]
                   == total - 1, message="the lease to leave the queue")
        stream.send({"type": "result", "lease_id": lease["lease_id"],
                     "sweep": "steady",
                     "records": [{"cell_key": "x" * 8192}]})
        wait_until(lambda: service.job_stats("steady")["pending"] == total,
                   timeout=30.0, message="the oversized sender's lease "
                   "to be re-queued")
        stream.close()

        # Truncated line (EOF mid-message, no newline): same containment.
        stream = fake_worker(service, "cutoff")
        lease = request(stream)
        stream._sock.sendall(b'{"type": "result", "lease_id"')
        stream._sock.shutdown(socket.SHUT_WR)
        wait_until(lambda: service.job_stats("steady")["pending"] == total,
                   timeout=30.0,
                   message="the truncated sender's lease to be re-queued")
        stream.close()

        assert service.job_stats("steady")["failure"] is None
        assert service.job_stats("steady")["status"] == "running"
    finally:
        service.shutdown()


# --------------------------------------------------------------------------- #
# Observability: per-sweep EWMA/ETA snapshots and Prometheus labels
# --------------------------------------------------------------------------- #
def test_metrics_snapshot_aggregates_and_labels_per_sweep():
    service = start_service()
    stream = None
    try:
        service.submit(ALPHA, "alpha", priority=2, batch_size=1)
        service.submit(BETA, "beta", batch_size=1)
        stream = fake_worker(service, "w")
        lease = request(stream)
        key = lease["keys"][0]
        stream.send({"type": "result", "lease_id": lease["lease_id"],
                     "sweep": lease["sweep"],
                     "records": [{"cell_key": key, "energy": 1.0}]})
        wait_until(lambda: service.metrics_snapshot()["done"] == 1,
                   message="the fabricated result to land")

        snapshot = service.metrics_snapshot()
        assert snapshot["sweeps_hosted"] == 2
        assert snapshot["total"] == ALPHA.size + BETA.size
        assert set(snapshot["sweeps"]) == {"alpha", "beta"}
        assert snapshot["sweeps"][lease["sweep"]]["throughput"] > 0

        text = render_prometheus(snapshot)
        assert "repro_queue_depth" in text        # aggregate plane intact
        assert 'repro_sweep_queue_depth{sweep="alpha"}' in text
        assert 'repro_sweep_priority{sweep="alpha"} 2' in text
        assert 'repro_sweep_status{sweep="beta",status="running"} 1' in text
        assert 'sweep="%s"' % lease["sweep"] in text
    finally:
        if stream is not None:
            stream.close()
        service.shutdown()
