"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.codegen import CompileOptions, compile_source
from repro.sim import Simulator


def compile_and_run(source: str, opt_level: str = "O2", entry: str = "main",
                    args=None):
    """Compile mini-C source and simulate it, returning the SimulationResult."""
    program = compile_source(source, CompileOptions.for_level(opt_level))
    return Simulator(program).run(entry=entry, args=args)


def run_all_levels(source: str, levels=("O0", "O1", "O2", "O3", "Os")):
    """Run the same source at several optimization levels; return results dict."""
    return {level: compile_and_run(source, level) for level in levels}


@pytest.fixture
def helpers():
    class Helpers:
        compile_and_run = staticmethod(compile_and_run)
        run_all_levels = staticmethod(run_all_levels)
    return Helpers
