"""Benchmark-suite tests: compilation correctness and optimization behaviour."""

import pytest

from repro.beebs import BENCHMARK_NAMES, get_benchmark, iter_benchmarks
from repro.codegen import CompileOptions, compile_source
from repro.evaluation.pipeline import run_optimized_benchmark
from repro.sim import Simulator


def test_registry_contains_the_paper_suite():
    assert set(BENCHMARK_NAMES) == {
        "2dfir", "blowfish", "crc32", "cubic", "dijkstra", "fdct",
        "float_matmult", "int_matmult", "rijndael", "sha"}
    assert get_benchmark("fdct").name == "fdct"
    with pytest.raises(KeyError):
        get_benchmark("quicksort")


def test_float_benchmarks_are_marked():
    assert get_benchmark("cubic").uses_float
    assert get_benchmark("float_matmult").uses_float
    assert not get_benchmark("crc32").uses_float


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_results_agree_between_o0_and_o2(name):
    benchmark = get_benchmark(name)
    results = {}
    for level in ("O0", "O2"):
        program = compile_source(benchmark.source, CompileOptions.for_level(level))
        results[level] = Simulator(program).run()
    assert results["O0"].return_value == results["O2"].return_value
    assert results["O2"].cycles <= results["O0"].cycles


@pytest.mark.parametrize("name", ["int_matmult", "fdct", "crc32"])
def test_optimization_preserves_benchmark_results(name):
    run = run_optimized_benchmark(name, "O2")
    assert run.optimized.return_value == run.baseline.return_value
    assert run.power_change < 0
    assert run.energy_change < 0.05  # never significantly worse


def test_float_benchmarks_gain_little_like_the_paper():
    """cubic / float_matmult are dominated by soft-float library code the
    optimizer cannot move, so their savings are small (paper Section 6)."""
    library_bound = run_optimized_benchmark("float_matmult", "O2")
    pure_integer = run_optimized_benchmark("int_matmult", "O2")
    assert abs(library_bound.energy_change) < abs(pure_integer.energy_change)
