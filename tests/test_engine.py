"""Experiment engine tests: cache, grids, result store, decode-once parity."""

import pytest

import repro.engine.cache as cache_module
from repro.codegen import CompileOptions, compile_source
from repro.engine import (
    ExperimentEngine,
    ExperimentSpec,
    ProgramCache,
    ResultStore,
    records_equal,
    run_record,
)
from repro.evaluation.figure5 import evaluate_suite
from repro.isa.registers import PC, SP
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.sim import Simulator

#: Small sample of the BEEBS grid used by the regression sweeps.
SAMPLE_GRID = [("crc32", "O2"), ("crc32", "Os"), ("fdct", "O2"), ("2dfir", "O2")]


def fresh_engine() -> ExperimentEngine:
    return ExperimentEngine(cache=ProgramCache())


def result_tuple(result):
    """Every observable field of a SimulationResult, for exact comparison."""
    return (result.return_value, result.cycles, result.instructions,
            result.energy_j, result.time_s, dict(result.cycles_by_section),
            dict(result.profile.counts), dict(result.profile.cycles))


# --------------------------------------------------------------------------- #
# Program cache
# --------------------------------------------------------------------------- #
def test_optimized_run_compiles_exactly_once(monkeypatch):
    compiles = []
    real_compile = cache_module.compile_source

    def counting_compile(source, options):
        compiles.append((options.program_name, str(options.opt_level)))
        return real_compile(source, options)

    monkeypatch.setattr(cache_module, "compile_source", counting_compile)
    engine = fresh_engine()
    engine.run_optimized("crc32", "O2")
    assert compiles == [("crc32", "O2")]

    # Re-running (any frequency mode) must not recompile.
    engine.run_optimized("crc32", "O2", frequency_mode="profile")
    engine.run_baseline("crc32", "O2")
    assert compiles == [("crc32", "O2")]

    # A different level is a different key.
    engine.run_optimized("crc32", "Os")
    assert compiles == [("crc32", "O2"), ("crc32", "Os")]


def test_cache_stats_and_shared_instance():
    cache = ProgramCache()
    first = cache.get_benchmark("crc32", "O2")
    second = cache.get_benchmark("crc32", "O2")
    assert first is second
    assert cache.stats.compiles == 1 and cache.stats.hits == 1

    mutable = cache.get_benchmark_mutable("crc32", "O2")
    assert mutable is not first
    assert cache.stats.compiles == 1  # deepcopy, not a recompile


def test_mutable_copy_preserves_register_identity_and_isolation():
    cache = ProgramCache()
    pristine = cache.get_benchmark("crc32", "O2")
    clone = cache.get_benchmark_mutable("crc32", "O2")

    # Register operands must stay the canonical singletons (`reg is PC`/`is SP`
    # checks inside the simulator and def/use analysis rely on identity).
    for function in clone.iter_functions():
        for block in function.iter_blocks():
            for instr in block.instructions:
                for operand in instr.operands:
                    regs = getattr(operand, "regs", None)
                    if regs is not None:
                        for reg in regs:
                            if reg.index == PC.index:
                                assert reg is PC
                            if reg.index == SP.index:
                                assert reg is SP

    # Transforming the copy must not leak into the pristine shared program.
    FlashRAMOptimizer(clone, config=PlacementConfig(x_limit=1.5)).optimize()
    assert clone.ram_code_size() > 0
    assert pristine.ram_code_size() == 0


# --------------------------------------------------------------------------- #
# BEEBS grid regression: correctness and decode-once parity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name,level", SAMPLE_GRID)
def test_grid_sample_optimized_matches_baseline_and_seed_simulator(name, level):
    engine = fresh_engine()
    run = engine.run_optimized(name, level)

    # The optimization must not change program results.
    assert run.optimized.return_value == run.baseline.return_value
    assert run.solution is not None and run.solution.ram_blocks

    # The decode-once fast path must reproduce the seed (interpreted)
    # simulator's numbers exactly, on both the pristine and the transformed
    # program.
    pristine = engine.compile_benchmark(name, level)
    assert result_tuple(Simulator(pristine).run()) == \
        result_tuple(Simulator(pristine, decode_once=False).run())
    assert result_tuple(run.baseline) == \
        result_tuple(Simulator(pristine, decode_once=False).run())

    transformed = engine.compile_benchmark_mutable(name, level)
    FlashRAMOptimizer(transformed, config=PlacementConfig(x_limit=1.5)).optimize()
    assert result_tuple(Simulator(transformed).run()) == \
        result_tuple(Simulator(transformed, decode_once=False).run())


def test_decode_cache_invalidated_by_placement():
    engine = fresh_engine()
    program = engine.compile_benchmark_mutable("crc32", "O2")
    before = Simulator(program).run()
    generation = program.layout_generation

    FlashRAMOptimizer(program, config=PlacementConfig(x_limit=1.5)).optimize()
    assert program.layout_generation > generation

    after = Simulator(program).run()          # must re-decode, not reuse
    assert after.return_value == before.return_value
    assert after.cycles_by_section["ram"] > 0


# --------------------------------------------------------------------------- #
# Grids: determinism and parallel/sequential equivalence
# --------------------------------------------------------------------------- #
def test_sequential_grid_matches_individual_runs_bitwise():
    specs = [ExperimentSpec(benchmark=n, opt_level=l) for n, l in SAMPLE_GRID]
    grid_runs = fresh_engine().run_grid(specs, max_workers=1)
    assert [run.name for run in grid_runs] == [n for n, _ in SAMPLE_GRID]

    single_engine = fresh_engine()
    for spec, run in zip(specs, grid_runs):
        single = single_engine.run_spec(spec)
        assert run_record(single) == run_record(run)


def test_parallel_grid_matches_sequential_bitwise():
    specs = [ExperimentSpec(benchmark="crc32", opt_level="O2"),
             ExperimentSpec(benchmark="fdct", opt_level="O2")]
    sequential = fresh_engine().run_grid(specs, max_workers=1)
    parallel = fresh_engine().run_grid(specs, max_workers=2)
    assert [run_record(run) for run in parallel] == \
        [run_record(run) for run in sequential]


def test_evaluate_suite_through_engine_matches_direct_runs():
    rows = evaluate_suite(benchmarks=["crc32"], levels=["O2"],
                          frequency_modes=("static", "profile"),
                          engine=fresh_engine(), max_workers=1)
    assert [(row.benchmark, row.opt_level, row.frequency_mode) for row in rows] \
        == [("crc32", "O2", "static"), ("crc32", "O2", "profile")]
    for row in rows:
        assert row.energy_change < 0
        assert row.blocks_moved > 0


# --------------------------------------------------------------------------- #
# Result store
# --------------------------------------------------------------------------- #
def test_result_store_roundtrip_is_bitwise(tmp_path):
    engine = fresh_engine()
    runs = [engine.run_optimized("crc32", "O2"),
            engine.run_baseline("crc32", "Os")]
    store = ResultStore(tmp_path)
    store.save_runs("sample", runs, meta={"levels": ["O2", "Os"]})

    loaded = store.load("sample")
    assert records_equal(loaded, [run_record(run) for run in runs])
    assert loaded[0]["optimized"]["energy_j"] == runs[0].optimized.energy_j
    assert loaded[1]["optimized"] is None
    assert store.load_meta("sample") == {"levels": ["O2", "Os"]}


# --------------------------------------------------------------------------- #
# Return-site interning (memory boundedness of long simulations)
# --------------------------------------------------------------------------- #
def test_return_sites_are_interned_not_per_dynamic_call():
    source = """
        int f(int x) { return x + 1; }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 200; ++i) { s = f(s); }
            return s;
        }
    """
    program = compile_source(source, CompileOptions.for_level("O2"))
    for decode_once in (True, False):
        simulator = Simulator(program, decode_once=decode_once)
        result = simulator.run()
        assert result.return_value == 200
        # One token per static call site, not one per dynamic call.
        assert len(simulator._return_sites) < 5
        assert len(simulator._return_sites) == len(simulator._return_site_tokens)
