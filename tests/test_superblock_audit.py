"""Superblock invariant auditor: clean on real traces, catches corruption."""

import pytest

from repro.analysis import audit_program_superblocks, audit_superblock
from repro.beebs import get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.placement.optimizer import FlashRAMOptimizer, PlacementConfig
from repro.sim import Simulator
from repro.sim.superblock import STEP_BATCH, STEP_CTRL

SOURCE = """
int main(void) {
    int total = 0;
    int i = 0;
    while (i < 200) {
        total = total + i;
        i = i + 1;
    }
    return total;
}
"""


def traced_program(source=SOURCE, level="O2"):
    """Compile *source* and run it so hot paths compile into superblocks."""
    program = compile_source(source, CompileOptions.for_level(level))
    Simulator(program).run()
    superblocks, _ = program.superblock_state()
    assert superblocks, "the hot loop must have trace-compiled"
    return program


def some_superblock(program):
    superblocks, _ = program.superblock_state()
    return superblocks[sorted(superblocks)[0]]


# --------------------------------------------------------------------------- #
# Clean traces audit clean
# --------------------------------------------------------------------------- #
def test_audit_is_clean_on_compiled_loop_traces():
    program = traced_program()
    checked, findings = audit_program_superblocks(program)
    assert checked > 0
    assert findings == []


def test_audit_is_clean_on_optimized_benchmark_run():
    # The Figure 5 shape: placement rewrites the program (flash and RAM
    # sections, instrumented edges), then simulation trace-compiles it.
    program = compile_source(get_benchmark("crc32").source,
                             CompileOptions.for_level("O2"))
    FlashRAMOptimizer(program, config=PlacementConfig(
        x_limit=1.5, solver="greedy")).optimize()
    Simulator(program).run()
    checked, findings = audit_program_superblocks(program)
    assert checked > 0
    assert findings == []


# --------------------------------------------------------------------------- #
# Deliberate corruption is detected
# --------------------------------------------------------------------------- #
def find_step(superblock, tag):
    for node in superblock.nodes:
        for index, step in enumerate(node.steps):
            if step[0] == tag:
                return node, index, step
    pytest.skip(f"no step with tag {tag} in the compiled trace")


def test_audit_detects_corrupted_batch_energy_key():
    program = traced_program()
    superblock = some_superblock(program)
    node, index, step = find_step(superblock, STEP_BATCH)
    _tag, runs, n, cycles, energy_items = step
    node.steps[index] = (STEP_BATCH, runs, n, cycles + 1, energy_items)
    findings = audit_superblock(program, superblock)
    assert any(f.rule == "energy-keys" for f in findings)


def test_audit_detects_dropped_handler():
    program = traced_program()
    superblock = some_superblock(program)
    node, index, step = find_step(superblock, STEP_BATCH)
    _tag, runs, n, cycles, energy_items = step
    node.steps[index] = (STEP_BATCH, runs[1:], n, cycles, energy_items)
    findings = audit_superblock(program, superblock)
    assert any(f.rule == "step-coverage" for f in findings)


def test_audit_detects_corrupted_chain_link():
    program = traced_program()
    superblock = some_superblock(program)
    superblock.nodes[0].chain_next = ("main", "no_such_block")
    superblock.nodes[0].next_index = 99
    findings = audit_superblock(program, superblock)
    assert any(f.rule == "chain" for f in findings)


def test_audit_detects_flipped_guard_conditionality():
    program = traced_program()
    superblock = some_superblock(program)
    node, index, step = find_step(superblock, STEP_CTRL)
    _tag, run, conditional, cycles, ekey_taken, cycles_nt, ekey_nt = step
    node.steps[index] = (STEP_CTRL, run, not conditional, cycles,
                        ekey_taken, cycles_nt, ekey_nt)
    findings = audit_superblock(program, superblock)
    assert any(f.rule == "side-exit" for f in findings)


def test_audit_detects_stale_fall_payload():
    program = traced_program()
    superblock = some_superblock(program)
    superblock.nodes[0].fall_payload = ("main", "no_such_block")
    findings = audit_superblock(program, superblock)
    assert any(f.rule == "chain" for f in findings)
