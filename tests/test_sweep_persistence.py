"""Resume/shard/merge/report semantics of the sweep persistence subsystem.

The contract under test: a sweep run as N shards, merged, is bitwise
identical (file bytes, not just values) to the same sweep run monolithically;
resuming an interrupted sweep re-simulates only the missing cells; and the
Figure 5/6 report is a pure function of the stored records.
"""

import json

import pytest

from repro.engine import (
    STORE_SCHEMA,
    ExperimentEngine,
    ProgramCache,
    ResultStore,
)
from repro.engine.engine import ExperimentEngine as EngineClass
from repro.explore import (
    SweepRecheckError,
    SweepSpec,
    cell_key,
    execute_sweep,
    parse_shard,
    report_from_store,
    report_scripts,
    report_tables,
    shard_cells,
    shard_index,
    sweep_report,
    write_report,
)

#: The sweep all simulation-backed tests share (4 cells, ~1 s total).
TEST_SWEEP = SweepSpec(benchmarks=("crc32", "fdct"), x_limits=(1.1, 1.5))


def fresh_engine() -> ExperimentEngine:
    return ExperimentEngine(cache=ProgramCache())


@pytest.fixture(scope="module")
def monolithic(tmp_path_factory):
    """One clean monolithic run of TEST_SWEEP, stored; reused read-only."""
    store = ResultStore(tmp_path_factory.mktemp("mono"))
    summary = execute_sweep(TEST_SWEEP, store=store, engine=fresh_engine(),
                            max_workers=1)
    return store, summary


# --------------------------------------------------------------------------- #
# Cell keys
# --------------------------------------------------------------------------- #
def test_cell_key_is_stable_and_enumeration_order_independent():
    cells = TEST_SWEEP.cells()
    # Same knobs enumerated in a different axis order: same key set.
    reordered = SweepSpec(benchmarks=("fdct", "crc32"), x_limits=(1.5, 1.1))
    assert {c.key for c in cells} == {c.key for c in reordered.cells()}
    # Distinct cells get distinct keys; keys are 16 hex chars.
    assert len({c.key for c in cells}) == len(cells)
    for cell in cells:
        assert len(cell.key) == 16
        int(cell.key, 16)
        assert cell.key == cell_key(cell)  # property and function agree


def test_cell_key_distinguishes_every_knob():
    base = SweepSpec(benchmarks=("crc32",)).cells()[0]
    variants = [
        SweepSpec(benchmarks=("fdct",)).cells()[0],
        SweepSpec(benchmarks=("crc32",), opt_levels=("Os",)).cells()[0],
        SweepSpec(benchmarks=("crc32",), x_limits=(1.7,)).cells()[0],
        SweepSpec(benchmarks=("crc32",), r_spares=(512,)).cells()[0],
        SweepSpec(benchmarks=("crc32",), flash_ram_ratios=(2.5,)).cells()[0],
        SweepSpec(benchmarks=("crc32",), solvers=("greedy",)).cells()[0],
        SweepSpec(benchmarks=("crc32",),
                  frequency_modes=("profile",)).cells()[0],
    ]
    keys = {base.key} | {v.key for v in variants}
    assert len(keys) == len(variants) + 1


# --------------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------------- #
def test_shard_union_covers_each_cell_exactly_once():
    sweep = SweepSpec(benchmarks=("crc32", "fdct", "2dfir"),
                      x_limits=(1.1, 1.5, 2.0),
                      flash_ram_ratios=(None, 2.5))
    cells = sweep.cells()
    all_keys = {c.key for c in cells}
    for count in (1, 2, 3, 5, 7):
        shards = [shard_cells(cells, index, count) for index in range(count)]
        seen = [c.key for shard in shards for c in shard]
        assert sorted(seen) == sorted(all_keys)          # exactly once
        for index, shard in enumerate(shards):
            for cell in shard:
                assert shard_index(cell.key, count) == index


def test_shard_validation_and_parse():
    cells = TEST_SWEEP.cells()
    with pytest.raises(ValueError):
        shard_cells(cells, 2, 2)
    with pytest.raises(ValueError):
        shard_cells(cells, 0, 0)
    assert parse_shard("0/3") == (0, 3)
    assert parse_shard("2/3") == (2, 3)
    for bad in ("3/3", "-1/3", "1", "a/b", "1/0"):
        with pytest.raises(ValueError):
            parse_shard(bad)


# --------------------------------------------------------------------------- #
# Keyed store container (no simulation)
# --------------------------------------------------------------------------- #
def record(key, **extra):
    base = {"cell_key": key, "benchmark": "b", "energy_j": 1.0,
            "time_ratio": 1.2, "ram_bytes": 64}
    base.update(extra)
    return base


def test_keyed_store_sorts_appends_and_rejects_conflicts(tmp_path):
    store = ResultStore(tmp_path)
    store.save_keyed("s", [record("bb"), record("aa")], meta={"x": 1})
    assert list(store.load_keyed("s")) == ["aa", "bb"]
    assert store.load_meta("s") == {"x": 1, "cells": 2}

    # Append new + identical duplicate: fine.
    store.append_keyed("s", [record("cc"), record("aa")])
    assert list(store.load_keyed("s")) == ["aa", "bb", "cc"]
    assert store.load_meta("s")["cells"] == 3

    # Conflicting duplicate: hard error.
    with pytest.raises(ValueError, match="conflicting"):
        store.append_keyed("s", [record("aa", energy_j=2.0)])
    with pytest.raises(ValueError, match="identity"):
        store.save_keyed("t", [{"benchmark": "b"}])
    with pytest.raises(ValueError, match="not a keyed store"):
        store.save("plain", [record("aa")])
        store.load_keyed("plain")


def test_store_rejects_unknown_schema_and_truncation(tmp_path):
    store = ResultStore(tmp_path)
    store.save("ok", [{"a": 1}])
    payload = json.loads(store.path_for("ok").read_text())
    assert payload["schema"] == STORE_SCHEMA
    assert store.load("ok") == [{"a": 1}]

    # Legacy (schema-less) stores still load.
    store.path_for("legacy").write_text(
        json.dumps({"meta": {}, "records": [{"a": 2}]}))
    assert store.load("legacy") == [{"a": 2}]

    # Unknown schema: clear refusal, not silent trust.
    store.path_for("future").write_text(
        json.dumps({"schema": 99, "meta": {}, "records": []}))
    with pytest.raises(ValueError, match="unknown result-store schema 99"):
        store.load("future")

    # A truncated file raises instead of yielding partial records.
    text = store.path_for("ok").read_text()
    store.path_for("cut").write_text(text[:len(text) // 2])
    with pytest.raises(json.JSONDecodeError):
        store.load("cut")


def test_journal_appends_without_rewriting_the_store(tmp_path):
    store = ResultStore(tmp_path)
    store.save_keyed("s", [record("aa")], meta={"x": 1})
    before = store.path_for("s").read_bytes()

    # Appends are O(batch): one line per record, store file untouched.
    store.append_journal("s", [record("bb")], meta={"x": 1})
    size_after_one = store.journal_path("s").stat().st_size
    store.append_journal("s", [record("cc"), record("dd")])
    assert store.path_for("s").read_bytes() == before
    assert store.journal_path("s").stat().st_size > size_after_one

    header, records = store.load_journal("s")
    assert header["keyed_by"] == "cell_key" and header["meta"] == {"x": 1}
    assert list(records) == ["bb", "cc", "dd"]

    # Compaction folds the journal into the canonical sorted store and
    # removes it; the result equals one big save_keyed.
    store.compact_journal("s")
    assert not store.journal_path("s").exists()
    reference = ResultStore(tmp_path / "ref")
    reference.save_keyed("s", [record(k) for k in ("aa", "bb", "cc", "dd")],
                         meta={"x": 1})
    assert store.path_for("s").read_bytes() == \
        reference.path_for("s").read_bytes()


def test_journal_replace_mode_and_validation(tmp_path):
    store = ResultStore(tmp_path)
    store.save_keyed("s", [record("old")], meta={})
    store.append_journal("s", [record("new")], meta={})
    # merge_store=False: the journal replaces the store (fresh-run semantics).
    store.compact_journal("s", merge_store=False)
    assert list(store.load_keyed("s")) == ["new"]

    # Records without the identity field are rejected before touching disk.
    with pytest.raises(ValueError, match="identity"):
        store.append_journal("s", [{"benchmark": "b"}])
    # Conflicting duplicates surface at replay, like merge().
    store.append_journal("s", [record("x"), record("x", energy_j=9.0)])
    with pytest.raises(ValueError, match="conflicting"):
        store.load_journal("s")


def test_journal_tolerates_torn_trailing_line_only(tmp_path):
    store = ResultStore(tmp_path)
    store.append_journal("s", [record("aa"), record("bb")], meta={"m": 1})
    path = store.journal_path("s")

    # A torn trailing line (interrupted append) is ignored on replay.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"cell_key": "cc", "trunc')
    header, records = store.load_journal("s")
    assert list(records) == ["aa", "bb"]

    # Corruption anywhere else is an error, not silent data loss.
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:10]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt journal line 2"):
        store.load_journal("s")

    # An unrecognized header is refused loudly.
    path.write_text('{"journal": 99, "keyed_by": "cell_key", "meta": {}}\n')
    with pytest.raises(ValueError, match="journal header"):
        store.load_journal("s")

    # An interrupted FIRST append (zero bytes, or one torn line) replays as
    # an empty journal, and compaction simply clears it — the advertised
    # crash-recovery path must never trip over its own wreckage.
    for wreckage in ("", '{"journal": 1, "keyed_by"'):
        path.write_text(wreckage)
        assert store.load_journal("s") == (None, {})
    assert store.compact_journal("s") is None
    assert not path.exists()


def test_checkpointed_sweep_matches_monolithic_and_resumes(tmp_path,
                                                           monolithic,
                                                           monkeypatch):
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "ckpt")
    summary = execute_sweep(TEST_SWEEP, store=store, checkpoint_every=1,
                            engine=fresh_engine(), max_workers=1)
    assert summary["computed"] == TEST_SWEEP.size
    assert not store.journal_path("sweep").exists()  # compacted away
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()

    # A crash between checkpoints leaves a journal; --resume folds it in
    # and recomputes only what was never journaled.
    crashed = ResultStore(tmp_path / "crashed")
    full = mono_store.load_keyed("sweep")
    keys = sorted(full)
    crashed.append_journal("sweep", [full[k] for k in keys[:3]],
                           meta=TEST_SWEEP.meta())
    computed = []
    real_run_spec = EngineClass.run_spec

    def counting_run_spec(self, spec):
        computed.append(spec)
        return real_run_spec(self, spec)

    monkeypatch.setattr(EngineClass, "run_spec", counting_run_spec)
    summary = execute_sweep(TEST_SWEEP, store=crashed, resume=True,
                            engine=fresh_engine(), max_workers=1)
    assert summary["skipped"] == 3 and summary["computed"] == 1
    assert len(computed) == 1
    assert crashed.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_resume_rejects_foreign_store_or_journal_before_compacting(
        tmp_path, monolithic):
    mono_store, _ = monolithic
    full = mono_store.load_keyed("sweep")

    # A store from a DIFFERENT sweep plus a journal from THIS sweep: the
    # axes check must fire before the journal is folded in — compacting
    # first would merge foreign records and overwrite the very meta the
    # check inspects.
    store = ResultStore(tmp_path / "mixed")
    store.save_keyed("sweep", [record("00ff00ff00ff00ff")],
                     meta={"benchmarks": ["other"]})
    store.append_journal("sweep", list(full.values())[:1],
                         meta=TEST_SWEEP.meta())
    before_store = store.path_for("sweep").read_bytes()
    before_journal = store.journal_path("sweep").read_bytes()
    with pytest.raises(ValueError, match="different\\s+sweeps"):
        execute_sweep(TEST_SWEEP, store=store, resume=True,
                      engine=fresh_engine(), max_workers=1)
    assert store.path_for("sweep").read_bytes() == before_store
    assert store.journal_path("sweep").read_bytes() == before_journal

    # No store, but a journal from a different sweep: refused too.
    foreign = ResultStore(tmp_path / "foreign-journal")
    foreign.append_journal("sweep", [record("00ff00ff00ff00ff")],
                           meta={"benchmarks": ["other"]})
    with pytest.raises(ValueError, match="different\\s+sweeps"):
        execute_sweep(TEST_SWEEP, store=foreign, resume=True,
                      engine=fresh_engine(), max_workers=1)


def test_fresh_run_discards_stale_journal(tmp_path, monolithic):
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "stale")
    store.append_journal("sweep", [record("deadbeefdeadbeef")],
                         meta={"not": "this sweep"})
    execute_sweep(TEST_SWEEP, store=store, engine=fresh_engine(),
                  max_workers=1, checkpoint_every=2)
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_save_is_atomic_against_serialization_failure(tmp_path):
    store = ResultStore(tmp_path)
    store.save("s", [{"a": 1}], meta={"m": 1})
    before = store.path_for("s").read_bytes()
    with pytest.raises(TypeError):
        store.save("s", [{"a": {1, 2, 3}}])  # sets are not JSON-serializable
    assert store.path_for("s").read_bytes() == before
    leftovers = [p for p in store.root.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_merge_validates_meta_disjointness_and_conflicts(tmp_path):
    meta = {"benchmarks": ["b"], "x_limits": [1.5]}
    a = ResultStore(tmp_path / "a")
    b = ResultStore(tmp_path / "b")
    a.save_keyed("sweep", [record("aa")], meta=dict(meta, shard=[0, 2]))
    b.save_keyed("sweep", [record("bb")], meta=dict(meta, shard=[1, 2]))

    dest = ResultStore(tmp_path / "merged")
    stats = dest.merge("sweep", [a.root, b.root], require_disjoint=True)
    assert stats["records"] == 2 and stats["duplicates"] == 0
    merged_meta = dest.load_meta("sweep")
    assert merged_meta == dict(meta, cells=2)            # shard keys stripped
    assert list(dest.load_keyed("sweep")) == ["aa", "bb"]

    # Overlapping identical record: allowed unless disjointness is required.
    c = ResultStore(tmp_path / "c")
    c.save_keyed("sweep", [record("aa")], meta=meta)
    stats = dest.merge("sweep", [a.root, c.root])
    assert stats["duplicates"] == 1
    with pytest.raises(ValueError, match="disjoint"):
        dest.merge("sweep", [a.root, c.root], require_disjoint=True)

    # Conflicting duplicate or foreign sweep: hard errors.
    d = ResultStore(tmp_path / "d")
    d.save_keyed("sweep", [record("aa", energy_j=9.0)], meta=meta)
    with pytest.raises(ValueError, match="conflicting"):
        dest.merge("sweep", [a.root, d.root])
    e = ResultStore(tmp_path / "e")
    e.save_keyed("sweep", [record("zz")], meta={"benchmarks": ["other"]})
    with pytest.raises(ValueError, match="different sweeps"):
        dest.merge("sweep", [a.root, e.root])


# --------------------------------------------------------------------------- #
# Shard -> merge == monolithic (real sweep, bitwise on file bytes)
# --------------------------------------------------------------------------- #
def test_sharded_merge_is_bitwise_identical_to_monolithic(tmp_path, monolithic):
    mono_store, _ = monolithic
    shard_stores = []
    for index in range(2):
        store = ResultStore(tmp_path / f"shard-{index}")
        summary = execute_sweep(TEST_SWEEP, store=store, shard=(index, 2),
                                engine=fresh_engine(), max_workers=1)
        assert summary["meta"]["shard"] == [index, 2]
        shard_stores.append(store.root)

    merged = ResultStore(tmp_path / "merged")
    stats = merged.merge("sweep", shard_stores, require_disjoint=True)
    assert stats["records"] == TEST_SWEEP.size
    assert merged.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_resume_runs_only_missing_cells_and_matches_clean_run(
        tmp_path, monolithic, monkeypatch):
    mono_store, _ = monolithic
    full = mono_store.load_keyed("sweep")
    keys = sorted(full)

    # Simulate an interrupted sweep: only the first two cells made it.
    store = ResultStore(tmp_path / "resume")
    store.save_keyed("sweep", [full[k] for k in keys[:2]],
                     meta=TEST_SWEEP.meta())

    computed = []
    real_run_spec = EngineClass.run_spec

    def counting_run_spec(self, spec):
        computed.append(spec)
        return real_run_spec(self, spec)

    monkeypatch.setattr(EngineClass, "run_spec", counting_run_spec)
    summary = execute_sweep(TEST_SWEEP, store=store, resume=True,
                            engine=fresh_engine(), max_workers=1)
    assert summary["skipped"] == 2 and summary["computed"] == 2
    assert len(computed) == 2                      # only the missing cells
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()

    # Resuming a complete store computes nothing and changes nothing.
    computed.clear()
    summary = execute_sweep(TEST_SWEEP, store=store, resume=True,
                            engine=fresh_engine(), max_workers=1)
    assert summary["computed"] == 0 and computed == []
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_recheck_passes_on_clean_store_and_detects_tampering(tmp_path,
                                                             monolithic):
    mono_store, _ = monolithic
    full = mono_store.load_keyed("sweep")

    clean = ResultStore(tmp_path / "clean")
    clean.save_keyed("sweep", full.values(), meta=TEST_SWEEP.meta())
    summary = execute_sweep(TEST_SWEEP, store=clean, resume=True, recheck=2,
                            engine=fresh_engine(), max_workers=1)
    assert summary["rechecked"] == 2

    tampered_records = [dict(r) for r in full.values()]
    tampered_records[0]["energy_j"] *= 1.000001
    tampered = ResultStore(tmp_path / "tampered")
    tampered.save_keyed("sweep", tampered_records, meta=TEST_SWEEP.meta())
    with pytest.raises(SweepRecheckError):
        execute_sweep(TEST_SWEEP, store=tampered, resume=True,
                      recheck=len(tampered_records),
                      engine=fresh_engine(), max_workers=1)


def test_resume_requires_store():
    with pytest.raises(ValueError, match="resume requires"):
        execute_sweep(TEST_SWEEP, resume=True, engine=fresh_engine(),
                      max_workers=1)


def test_resume_rejects_store_from_a_different_sweep(tmp_path, monolithic):
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "foreign")
    store.save_keyed("sweep", mono_store.load_keyed("sweep").values(),
                     meta=TEST_SWEEP.meta())
    narrower = SweepSpec(benchmarks=("crc32",), x_limits=(1.1, 1.5))
    with pytest.raises(ValueError, match="different\\s+sweeps"):
        execute_sweep(narrower, store=store, resume=True,
                      engine=fresh_engine(), max_workers=1)
    # The store must be left untouched by the refused resume.
    assert store.load_meta("sweep")["benchmarks"] == ["crc32", "fdct"]
    assert len(store.load_keyed("sweep")) == TEST_SWEEP.size


# --------------------------------------------------------------------------- #
# Report pipeline
# --------------------------------------------------------------------------- #
def hand_records():
    return [
        {"cell_key": "k1", "benchmark": "a", "flash_ram_ratio": None,
         "x_limit": 1.1, "energy_j": 2.0, "time_ratio": 1.05, "ram_bytes": 40,
         "energy_change": -0.2, "time_change": 0.05, "blocks_moved": 2},
        {"cell_key": "k2", "benchmark": "a", "flash_ram_ratio": None,
         "x_limit": 1.5, "energy_j": 1.0, "time_ratio": 1.4, "ram_bytes": 90,
         "energy_change": -0.4, "time_change": 0.4, "blocks_moved": 5},
        {"cell_key": "k3", "benchmark": "a", "flash_ram_ratio": None,
         "x_limit": 1.5, "energy_j": 3.0, "time_ratio": 1.5, "ram_bytes": 95,
         "energy_change": -0.1, "time_change": 0.5, "blocks_moved": 6},
        {"cell_key": "k4", "benchmark": "b", "flash_ram_ratio": 2.5,
         "x_limit": 1.5, "energy_j": 9.0, "time_ratio": 1.2, "ram_bytes": 10,
         "energy_change": -0.3, "time_change": 0.2, "blocks_moved": 1},
    ]


def test_sweep_report_fronts_envelope_and_summary():
    report = sweep_report(hand_records())
    assert report["summary"]["cells"] == 4
    assert report["summary"]["benchmarks"] == ["a", "b"]
    # k3 is dominated by k2 within benchmark a; b's only point is frontier.
    assert report["summary"]["pareto_points"] == 3
    fronts = report["fronts"]
    a_label = "benchmark=a,flash_ram_ratio=None"
    assert [r["cell_key"] for r in fronts[a_label]] == ["k2", "k1"]
    assert report["summary"]["frontier_sizes"][a_label] == 2
    # Envelope: lowest-energy cell per (group, X_limit).
    envelope = report["energy_vs_x_limit"]
    assert [(r["benchmark"], r["x_limit"], r["cell_key"]) for r in envelope] \
        == [("a", 1.1, "k1"), ("a", 1.5, "k2"), ("b", 1.5, "k4")]
    # Input order must not matter.
    shuffled = sweep_report(list(reversed(hand_records())))
    assert shuffled == report


def test_report_tables_are_csv_with_exact_floats():
    report = sweep_report(hand_records())
    tables = report_tables(report)
    front_csv = tables["pareto_fronts.csv"].splitlines()
    assert front_csv[0].startswith("benchmark,flash_ram_ratio,")
    assert len(front_csv) == 1 + report["summary"]["pareto_points"]
    envelope_csv = tables["energy_vs_x_limit.csv"].splitlines()
    assert len(envelope_csv) == 1 + len(report["energy_vs_x_limit"])
    # Floats serialize via repr (exact) and None as empty.
    assert "1.05" in tables["pareto_fronts.csv"]
    assert ",," in tables["pareto_fronts.csv"]  # the None ratio column


def fidelity_records():
    def record(key, mode, fb, blocks, x_limit=1.5):
        return {"cell_key": key, "benchmark": "a", "opt_level": "O2",
                "solver": "ilp", "frequency_mode": mode, "x_limit": x_limit,
                "r_spare_requested": None, "flash_ram_ratio": None,
                "energy_j": 1.0, "time_ratio": 1.0, "ram_bytes": 0,
                "energy_change": 0.0, "time_change": 0.0, "blocks_moved": 0,
                "fb_mean_abs_log_ratio": fb, "fb_blocks_compared": 7,
                "fb_predicted_dead": 0, "fb_missed_hot": 0,
                "ram_blocks": blocks}
    return [
        record("p1", "profile", 0.0, ["f:a", "f:b"]),
        record("p2", "profile", 0.0, ["f:c"], x_limit=1.1),
        record("s1", "static", 0.8, ["f:a", "f:b"]),            # exact match
        record("s2", "static", 0.6, ["f:a"], x_limit=1.1),      # differs
        record("w1", "wu_larus", 0.4, ["f:a"]),                 # overlaps p1
    ]


def test_frequency_fidelity_rows_aggregate_and_pair_against_profile():
    from repro.explore.report import frequency_fidelity_rows
    rows = frequency_fidelity_rows(fidelity_records())
    by_mode = {row["frequency_mode"]: row for row in rows}
    assert set(by_mode) == {"profile", "static", "wu_larus"}

    profile = by_mode["profile"]
    assert profile["fb_mean_abs_log_ratio"] == 0.0
    assert profile["placements_compared"] == 0      # nothing to compare with
    assert profile["placement_exact_match"] is None

    static = by_mode["static"]
    assert static["cells"] == 2
    assert static["fb_mean_abs_log_ratio"] == pytest.approx(0.7)
    # s1 matches p1 exactly; s2 picks {f:a} against p2's {f:c} (Jaccard 0).
    assert static["placements_compared"] == 2
    assert static["placement_exact_match"] == pytest.approx(0.5)
    assert static["placement_jaccard"] == pytest.approx(0.5)

    wu = by_mode["wu_larus"]
    # w1's {f:a} vs p1's {f:a, f:b}: no exact match, Jaccard 1/2.
    assert wu["placements_compared"] == 1
    assert wu["placement_exact_match"] == 0.0
    assert wu["placement_jaccard"] == pytest.approx(0.5)

    # Deterministic in record contents, not their order.
    assert frequency_fidelity_rows(list(reversed(fidelity_records()))) == rows


def test_report_embeds_fidelity_section_and_csv():
    report = sweep_report(fidelity_records())
    assert len(report["frequency_fidelity"]) == 3
    csv_text = report_tables(report)["frequency_fidelity.csv"]
    lines = csv_text.splitlines()
    assert lines[0].startswith("benchmark,frequency_mode,cells,")
    assert len(lines) == 4
    # Records without fidelity fields produce an empty (but valid) table.
    bare = sweep_report(hand_records())
    assert bare["frequency_fidelity"] == []
    assert len(report_tables(bare)["frequency_fidelity.csv"].splitlines()) == 1


def test_report_gnuplot_scripts_cover_every_series():
    report = sweep_report(hand_records())
    scripts = report_scripts(report)
    assert sorted(scripts) == ["energy_vs_x_limit.gp", "pareto_fronts.gp"]

    envelope = scripts["energy_vs_x_limit.gp"]
    # One plot clause per (benchmark, ratio) series, reading the CSV the
    # report writes next to the script; calibrated cells match the empty
    # ratio column.
    assert 'set datafile separator ","' in envelope
    assert '"energy_vs_x_limit.csv"' in envelope
    assert 'strcol(1) eq "a" && strcol(2) eq ""' in envelope
    assert 'strcol(1) eq "b" && strcol(2) eq "2.5"' in envelope
    # Flat records match the timing_model column (3) explicitly.
    assert 'strcol(3) eq "flat"' in envelope
    assert 'title "a (calibrated)"' in envelope
    assert 'title "b (ratio 2.5)"' in envelope
    # x/y columns must track the CSV layout constants.
    assert ": NaN):5 " in envelope        # energy_j is envelope column 5
    assert "column(4)" in envelope        # x_limit is envelope column 4

    fronts = scripts["pareto_fronts.gp"]
    assert '"pareto_fronts.csv"' in fronts
    assert ": NaN):9 " in fronts          # energy_j is front column 9
    assert "column(10)" in fronts         # time_ratio is front column 10

    # Deterministic in the report alone (shard→merge→report contract).
    assert report_scripts(sweep_report(list(reversed(hand_records())))) \
        == scripts


def test_progress_reporting_writes_stderr_only(tmp_path, monolithic, capsys):
    mono_store, _ = monolithic
    store = ResultStore(tmp_path / "progress")
    execute_sweep(TEST_SWEEP, store=store, engine=fresh_engine(),
                  max_workers=1, progress=True)
    captured = capsys.readouterr()
    assert captured.out == ""                       # stdout machine-readable
    assert f"{TEST_SWEEP.size}/{TEST_SWEEP.size} cells" in captured.err
    assert "cells/s" in captured.err
    assert store.path_for("sweep").read_bytes() == \
        mono_store.path_for("sweep").read_bytes()


def test_report_from_store_needs_no_simulation(tmp_path, monolithic,
                                               monkeypatch):
    mono_store, _ = monolithic
    # Any attempt to run an experiment during reporting is a failure.
    monkeypatch.setattr(
        EngineClass, "run_spec",
        lambda self, spec: (_ for _ in ()).throw(
            AssertionError("report must not simulate")))
    report = report_from_store(mono_store)
    assert report["summary"]["cells"] == TEST_SWEEP.size
    assert report["store_meta"]["cells"] == TEST_SWEEP.size
    assert report["summary"]["pareto_points"] >= 1
    for front in report["fronts"].values():
        for record_ in front:
            assert record_["pareto"] is True

    write_report(report, tmp_path / "out")
    assert sorted(p.name for p in (tmp_path / "out").iterdir()) == \
        ["energy_vs_x_limit.csv", "energy_vs_x_limit.gp",
         "frequency_fidelity.csv", "pareto_fronts.csv", "pareto_fronts.gp",
         "report.json"]
    reloaded = json.loads((tmp_path / "out" / "report.json").read_text())
    assert reloaded == json.loads(json.dumps(report))
