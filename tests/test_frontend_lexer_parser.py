"""Lexer and parser unit tests."""

import pytest

from repro.frontend import ast
from repro.frontend.lexer import Lexer, LexerError, TokenKind, tokenize
from repro.frontend.parser import ParseError, parse_program


# --------------------------------------------------------------------------- #
# Lexer
# --------------------------------------------------------------------------- #
def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def test_lexer_keywords_and_identifiers():
    assert kinds("int unsigned float void if else while for return") == [
        TokenKind.KW_INT, TokenKind.KW_UNSIGNED, TokenKind.KW_FLOAT,
        TokenKind.KW_VOID, TokenKind.KW_IF, TokenKind.KW_ELSE,
        TokenKind.KW_WHILE, TokenKind.KW_FOR, TokenKind.KW_RETURN]
    tokens = tokenize("foo _bar baz42")
    assert [t.text for t in tokens[:-1]] == ["foo", "_bar", "baz42"]
    assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])


def test_lexer_integer_literals():
    tokens = tokenize("0 42 0x1F 4294967295 7u")
    values = [t.int_value for t in tokens[:-1]]
    assert values == [0, 42, 31, 4294967295, 7]


def test_lexer_float_literals():
    tokens = tokenize("1.5 0.25 2.0f 3e2 1.5e-1")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.FLOAT_LIT] * 5
    assert tokens[0].float_value == pytest.approx(1.5)
    assert tokens[3].float_value == pytest.approx(300.0)
    assert tokens[4].float_value == pytest.approx(0.15)


def test_lexer_operators_maximal_munch():
    assert kinds("a<<=b") == [TokenKind.IDENT, TokenKind.SHL_ASSIGN, TokenKind.IDENT]
    assert kinds("a<<b") == [TokenKind.IDENT, TokenKind.SHL, TokenKind.IDENT]
    assert kinds("a<=b") == [TokenKind.IDENT, TokenKind.LE, TokenKind.IDENT]
    assert kinds("a<b") == [TokenKind.IDENT, TokenKind.LT, TokenKind.IDENT]
    assert kinds("x++ + ++y") == [TokenKind.IDENT, TokenKind.PLUS_PLUS,
                                  TokenKind.PLUS, TokenKind.PLUS_PLUS,
                                  TokenKind.IDENT]


def test_lexer_comments_are_skipped():
    source = """
    // line comment
    int x; /* block
    comment */ int y;
    """
    assert kinds(source) == [TokenKind.KW_INT, TokenKind.IDENT, TokenKind.SEMI,
                             TokenKind.KW_INT, TokenKind.IDENT, TokenKind.SEMI]


def test_lexer_unterminated_comment_raises():
    with pytest.raises(LexerError):
        tokenize("int x; /* oops")


def test_lexer_bad_character_raises():
    with pytest.raises(LexerError):
        tokenize("int x = @;")


def test_lexer_tracks_line_numbers():
    tokens = tokenize("int x;\nint y;")
    assert tokens[0].line == 1
    assert tokens[3].line == 2


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def test_parse_simple_function():
    program = parse_program("int add(int a, int b) { return a + b; }")
    assert len(program.functions) == 1
    func = program.functions[0]
    assert func.name == "add"
    assert [p.name for p in func.params] == ["a", "b"]
    assert isinstance(func.body.statements[0], ast.Return)


def test_parse_global_declarations():
    program = parse_program("""
        const int table[4] = {1, 2, 3, 4};
        int counter = 10;
        unsigned mask;
    """)
    assert [g.name for g in program.globals] == ["table", "counter", "mask"]
    assert program.globals[0].const is True
    assert len(program.globals[0].array_init) == 4


def test_parse_precedence():
    program = parse_program("int f(void) { return 1 + 2 * 3; }")
    ret = program.functions[0].body.statements[0]
    assert isinstance(ret.value, ast.BinaryOp)
    assert ret.value.op == "+"
    assert isinstance(ret.value.rhs, ast.BinaryOp)
    assert ret.value.rhs.op == "*"


def test_parse_if_else_chain_and_loops():
    program = parse_program("""
        int f(int x) {
            int total = 0;
            if (x > 0) { total = 1; } else if (x < 0) { total = -1; } else { total = 0; }
            while (x > 0) { x--; }
            for (int i = 0; i < 4; ++i) { total += i; }
            do { total += 1; } while (total < 0);
            return total;
        }
    """)
    body = program.functions[0].body.statements
    assert isinstance(body[1], ast.If)
    assert isinstance(body[1].otherwise, ast.If)
    assert isinstance(body[2], ast.While)
    assert isinstance(body[3], ast.For)
    assert isinstance(body[4], ast.DoWhile)


def test_parse_ternary_and_compound_assignment():
    program = parse_program("int f(int x) { x += 2; x <<= 1; return x > 0 ? x : -x; }")
    statements = program.functions[0].body.statements
    assert statements[0].expr.op == "+"
    assert statements[1].expr.op == "<<"
    assert isinstance(statements[2].value, ast.Conditional)


def test_parse_array_indexing_and_calls():
    program = parse_program("""
        int buffer[8];
        int get(int i) { return buffer[i + 1]; }
        int main(void) { return get(3) + buffer[0]; }
    """)
    get_body = program.functions[0].body.statements[0]
    assert isinstance(get_body.value, ast.Index)
    main_body = program.functions[1].body.statements[0]
    assert isinstance(main_body.value.lhs, ast.Call)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_program("int f( { return 0; }")
    with pytest.raises(ParseError):
        parse_program("int f(void) { return 0 }")
    with pytest.raises(ParseError):
        parse_program("banana f(void) { return 0; }")
    with pytest.raises(ParseError):
        parse_program("const int f(void) { return 0; }")


def test_parse_multiple_declarators_in_one_statement():
    program = parse_program("int f(void) { int a = 1, b = 2; return a + b; }")
    group = program.functions[0].body.statements[0]
    assert isinstance(group, ast.DeclGroup)
    assert [d.name for d in group.declarations] == ["a", "b"]
