"""Package metadata for the CGO 2015 flash-RAM trade-off reproduction.

Editable installs work offline (no wheel needed)::

    pip install -e .

which also installs the ``repro-eval`` console entry point for running the
paper's figures through the experiment engine.
"""

from setuptools import find_packages, setup

setup(
    name="repro-flash-ram",
    version="0.2.0",
    description=("Reproduction of Pallister, Eder & Hollis (CGO 2015): "
                 "Optimizing the flash-RAM energy trade-off in deeply "
                 "embedded systems"),
    long_description=("A mini-C compiler, Cortex-M3-like simulator with an "
                      "energy model, ILP-based flash/RAM basic-block "
                      "placement, and a cached parallel experiment engine "
                      "that reproduces the paper's figures."),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-eval = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Software Development :: Compilers",
        "Topic :: System :: Emulators",
    ],
)
