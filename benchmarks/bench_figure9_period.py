"""Figure 9 bench: post-optimization energy vs sensing period."""

from benchmarks.conftest import print_table
from repro.evaluation.figure9 import period_sweep


def test_figure9_period_sweep(benchmark):
    series = benchmark.pedantic(
        lambda: period_sweep(["fdct", "int_matmult", "2dfir"],
                             multiples=[1.5, 2, 4, 8, 16]),
        rounds=1, iterations=1)
    rows = [row for rows in series.values() for row in rows]
    print_table("Figure 9: energy after optimization vs period T", rows,
                ["benchmark", "period_multiple", "energy_percent",
                 "battery_extension"])
    for name, bench_rows in series.items():
        ratios = [row["energy_ratio"] for row in bench_rows]
        # Savings shrink monotonically as the period grows (paper's Figure 9).
        assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:])), name
        assert all(ratio <= 1.0 + 1e-9 for ratio in ratios), name
