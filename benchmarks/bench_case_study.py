"""Section 7 case-study bench: paper constants vs measured fdct pipeline."""

from benchmarks.conftest import print_table
from repro.evaluation.case_study import case_study_report


def test_case_study(benchmark):
    report = benchmark.pedantic(lambda: case_study_report("fdct", "O2"),
                                rounds=1, iterations=1)
    paper = report["paper"]
    measured = report["measured"]
    print_table("Case study: paper worked example", [{
        "energy_saved_mJ": paper["energy_saved_j"] * 1e3,
        "paper_quotes_mJ": paper["paper_energy_saved_j"] * 1e3,
        "battery_ext_best_%": 100 * paper["battery_extension_best"],
    }], ["energy_saved_mJ", "paper_quotes_mJ", "battery_ext_best_%"])
    print_table("Case study: our measured fdct", [{
        "ke": measured["ke"],
        "kt": measured["kt"],
        "energy_saved_uJ": measured["energy_saved_j"] * 1e6,
        "battery_ext_best_%": 100 * measured["battery_extension_best"],
    }], ["ke", "kt", "energy_saved_uJ", "battery_ext_best_%"])
    assert abs(paper["energy_saved_j"] - 4.32e-3) < 0.2e-3
    assert measured["energy_saved_j"] > 0
