"""Perf smoke bench: incremental cost-model evaluation and the explore sweep.

Two measurements, recorded to ``BENCH_explore.json``:

* **greedy** — ``greedy_placement`` on the largest BEEBS kernel (most basic
  blocks in the compiled model), full O(n) evaluation per candidate
  (``incremental=False``, the pre-incremental behaviour) vs the
  :class:`~repro.placement.cost_model.IncrementalPlacement` fast path.
  Asserts the two select the **identical RAM set** and that the incremental
  path is at least 3x faster.
* **sweep** — a small ``repro.explore`` design-space sweep (2 kernels x
  2 X_limits x 2 flash/RAM ratios) run sequentially and in parallel,
  asserting bitwise-identical records.

Run with::

    PYTHONPATH=src python benchmarks/bench_explore.py [--output BENCH_explore.json]
"""

from __future__ import annotations

import argparse
import time
from typing import Optional

from conftest import print_table

from repro.beebs import BENCHMARK_NAMES
from repro.engine import (
    ExperimentEngine,
    ProgramCache,
    atomic_write_json,
    default_cache,
)
from repro.explore import SweepSpec, run_sweep
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.placement.solvers.greedy import greedy_placement

GREEDY_REPEATS = 9
SPEEDUP_FLOOR = 3.0


def largest_kernel(opt_level: str = "O2") -> str:
    """The BEEBS kernel whose compiled model has the most basic blocks."""
    def block_count(name: str) -> int:
        program = default_cache().get_benchmark(name, opt_level)
        return sum(1 for _ in program.iter_blocks())
    return max(BENCHMARK_NAMES, key=block_count)


def bench_greedy(opt_level: str = "O2") -> dict:
    name = largest_kernel(opt_level)
    program = default_cache().get_benchmark_mutable(name, opt_level)
    optimizer = FlashRAMOptimizer(program, config=PlacementConfig())
    model = optimizer.build_cost_model()
    r_spare = optimizer.derive_r_spare()
    x_limit = 1.5

    timings = {}
    selections = {}
    for incremental in (False, True):
        best = float("inf")
        for _ in range(GREEDY_REPEATS):
            start = time.perf_counter()
            ram = greedy_placement(model, r_spare, x_limit,
                                   incremental=incremental)
            best = min(best, time.perf_counter() - start)
        timings[incremental] = best
        selections[incremental] = ram

    assert selections[False] == selections[True], (
        "incremental greedy selected a different RAM set than full evaluation")
    speedup = timings[False] / timings[True]
    record = {
        "benchmark": name,
        "blocks": len(model.parameters),
        "eligible": len(model.eligible_keys()),
        "r_spare": r_spare,
        "full_ms": timings[False] * 1e3,
        "incremental_ms": timings[True] * 1e3,
        "speedup": speedup,
        "ram_blocks": len(selections[True]),
    }
    print_table(f"greedy_placement on {name} (largest kernel)", [record],
                ["benchmark", "blocks", "full_ms", "incremental_ms",
                 "speedup", "ram_blocks"])
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental greedy speedup {speedup:.2f}x is below the "
        f"{SPEEDUP_FLOOR}x floor")
    return record


def bench_sweep(workers: Optional[int]) -> dict:
    sweep = SweepSpec(benchmarks=("crc32", "fdct"), x_limits=(1.1, 1.5),
                      flash_ram_ratios=(None, 2.5))

    start = time.perf_counter()
    sequential = run_sweep(sweep, engine=ExperimentEngine(cache=ProgramCache()),
                           max_workers=1)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(sweep, engine=ExperimentEngine(cache=ProgramCache()),
                         max_workers=workers)
    parallel_s = time.perf_counter() - start

    assert sequential.records == parallel.records, (
        "parallel sweep records differ from sequential")
    record = {
        "cells": len(sequential.records),
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "bitwise_equal": True,
    }
    print_table("explore sweep (2 kernels x 2 X_limits x 2 ratios)", [record],
                ["cells", "sequential_s", "parallel_s", "bitwise_equal"])
    return record


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default=None, metavar="FILE")
    args = parser.parse_args()

    greedy_record = bench_greedy()
    sweep_record = bench_sweep(args.workers)

    if args.output:
        payload = {"greedy": greedy_record, "sweep": sweep_record}
        atomic_write_json(args.output, payload)
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
