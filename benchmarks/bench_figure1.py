"""Figure 1 bench: per-instruction average power, flash vs RAM."""

from benchmarks.conftest import print_table
from repro.evaluation.figure1 import instruction_power_rows


def test_figure1_instruction_power(benchmark):
    rows = benchmark.pedantic(instruction_power_rows, rounds=1, iterations=1)
    print_table("Figure 1: average power per instruction kind (mW)", rows,
                ["instruction", "flash_power_mw", "ram_power_mw",
                 "ram_saving_percent"])
    assert all(row["ram_power_mw"] <= row["flash_power_mw"] for row in rows)
