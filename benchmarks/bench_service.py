"""Perf smoke bench: adaptive lease tails vs fixed batches, bitwise.

One straggler scenario, recorded to ``BENCH_service.json``: a two-worker
fleet in which one worker sleeps ``throttle`` seconds per cell, driven
through the multi-sweep service (``execute_sweep_distributed`` hosts the
sweep on a private :class:`repro.distrib.SweepService`).  Under **fixed**
batching the straggler parks one full ``batch_size`` lease, so its *sleep
time alone* bounds a fixed run from below at ``batch_size * throttle``.
Under the **adaptive** tail policy (`adaptive_batch`) the cut shrinks
with the remaining-work/fleet ratio, so the straggler never parks more
than a sliver of the sweep and the fast worker absorbs the rest.

Recorded ``speedup`` is ``fixed_lower_bound / adaptive_wall`` — dividing
a *measured* adaptive wall into an *analytic* sleep-only bound makes the
ratio conservative (a real fixed run also pays compute) and stable across
runner generations; that is the leaf ``check_bench.py`` gates.  A real
fixed-batch run is also measured and recorded
(``fixed_s``, ``fixed_over_adaptive``) as the honest end-to-end
comparison.  The bench further asserts both distributed stores are
**bitwise identical** to a monolithic ``execute_sweep`` of the same spec.

Run with::

    PYTHONPATH=src python benchmarks/bench_service.py [--output BENCH_service.json]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from conftest import print_table

from repro.distrib import adaptive_batch, execute_sweep_distributed
from repro.engine import (
    ExperimentEngine,
    ProgramCache,
    ResultStore,
    atomic_write_json,
)
from repro.explore import SweepSpec, execute_sweep

SWEEP = SweepSpec(benchmarks=("crc32", "fdct"), x_limits=(1.1, 1.5),
                  flash_ram_ratios=(None, 2.5))
BATCH = 4
FLEET = 2
SPEEDUP_FLOOR = 1.3


def bench_adaptive_tail(root: Path) -> dict:
    # Monolithic reference: the bitwise baseline and the per-cell compute
    # cost the straggler margin self-calibrates against.
    mono = ResultStore(root / "mono")
    start = time.perf_counter()
    execute_sweep(SWEEP, store=mono,
                  engine=ExperimentEngine(cache=ProgramCache()),
                  max_workers=1)
    mono_s = time.perf_counter() - start
    per_cell = mono_s / SWEEP.size

    # throttle >> spawn + total compute, so the straggler's parked batch
    # dominates every other cost of a fixed-batch run.
    throttle = max(2.0, 4 * per_cell + 3.0)
    fixed_lower_bound = BATCH * throttle
    # With this sweep the adaptive policy starts at the tail already:
    first_cut = adaptive_batch(SWEEP.size, fleet=FLEET, max_batch=BATCH)

    def fleet_run(label: str, adaptive: bool) -> tuple:
        store = ResultStore(root / label)
        start = time.perf_counter()
        summary = execute_sweep_distributed(
            SWEEP, store=store, workers=FLEET, batch_size=BATCH,
            adaptive=adaptive,
            worker_options=[{"name": "slow", "throttle": throttle},
                            {"name": "fast"}])
        wall = time.perf_counter() - start
        bitwise = (store.path_for("sweep").read_bytes()
                   == mono.path_for("sweep").read_bytes())
        assert bitwise, f"{label} store differs from the monolithic run"
        counts = summary["distrib"]["cells_by_worker"]
        slow = sum(count for worker, count in counts.items()
                   if worker.startswith("slow"))
        return wall, slow, bitwise

    adaptive_s, slow_adaptive, bitwise_adaptive = fleet_run("adaptive", True)
    fixed_s, slow_fixed, bitwise_fixed = fleet_run("fixed", False)

    record = {
        "cells": SWEEP.size,
        "monolithic_s": mono_s,
        "throttle_s_per_cell": throttle,
        "batch_size": BATCH,
        "adaptive_first_cut": first_cut,
        "fixed_lower_bound_s": fixed_lower_bound,
        "fixed_s": fixed_s,
        "adaptive_s": adaptive_s,
        "speedup": fixed_lower_bound / adaptive_s,
        "fixed_over_adaptive": fixed_s / adaptive_s,
        "straggler_cells_adaptive": slow_adaptive,
        "straggler_cells_fixed": slow_fixed,
        "bitwise_identical_adaptive": bitwise_adaptive,
        "bitwise_identical_fixed": bitwise_fixed,
    }
    print_table("adaptive tails vs fixed batches (1 straggler of 2 workers)",
                [record],
                ["cells", "throttle_s_per_cell", "fixed_lower_bound_s",
                 "fixed_s", "adaptive_s", "speedup", "fixed_over_adaptive",
                 "straggler_cells_adaptive", "straggler_cells_fixed"])
    assert record["speedup"] >= SPEEDUP_FLOOR, (
        f"adaptive tail speedup {record['speedup']:.2f}x over the fixed-batch "
        f"sleep-only bound is below the {SPEEDUP_FLOOR}x floor")
    return record


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default=None, metavar="FILE")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as root:
        record = bench_adaptive_tail(Path(root))

    if args.output:
        atomic_write_json(args.output, {"straggler_tail": record})
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
