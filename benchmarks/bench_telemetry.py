"""Perf smoke bench: telemetry must be (nearly) free and strictly out of band.

Runs the Figure 5 BEEBS grid (every benchmark x O2/Os) through fresh
engines sharing one preloaded :class:`ProgramCache`, N times with telemetry
off and N times streaming spans/counters to a sink directory.  Each repeat
times the two modes back to back in alternating order, so slow machine-load
drift hits both equally; the recorded ratio is the **median of the per-pair
off/on ratios**, which a single noisy outlier pass cannot skew.  Two gates:

* **overhead** — the paired off/on ratio (``telemetry_overhead_speedup``)
  must stay above 0.98: tracing may cost at most 2% of the grid;
* **bitwise** — the per-cell records of the traced and untraced passes must
  be byte-identical once canonically serialized
  (``records_bitwise_identical``): telemetry never touches results.

Run with::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--quick] \
        [--repeats N] [--output BENCH_telemetry.json]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import tempfile
import time
from typing import List, Optional, Tuple

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine, ProgramCache, atomic_write_json
from repro.engine.engine import ExperimentSpec
from repro.engine.results import run_record
from repro.telemetry import configure_telemetry, reset_telemetry

LEVELS = ["O2", "Os"]
#: Telemetry may cost at most 2% of grid wall-clock (off/on >= this ratio).
OVERHEAD_SPEEDUP_FLOOR = 0.98


def canonical_records(runs) -> str:
    """Order- and key-stable serialization of a grid's records."""
    return json.dumps([run_record(run) for run in runs], sort_keys=True)


def run_grid_once(cache: ProgramCache,
                  specs: List[ExperimentSpec]) -> Tuple[float, str]:
    """One sequential grid pass on a fresh engine; (seconds, records)."""
    engine = ExperimentEngine(cache=cache, max_workers=1)
    started = time.perf_counter()
    runs = engine.run_grid(specs)
    seconds = time.perf_counter() - started
    return seconds, canonical_records(runs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run a 4-benchmark subset instead of the suite")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions per mode (best-of, default 5)")
    parser.add_argument("--output", default="BENCH_telemetry.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    benchmarks = (["2dfir", "crc32", "fdct", "int_matmult"] if args.quick
                  else list(BENCHMARK_NAMES))
    specs = [ExperimentSpec(benchmark=name, opt_level=level)
             for name in benchmarks for level in LEVELS]

    # One shared cache: programs compile once, every timed pass measures the
    # optimize+simulate pipeline the instrumentation actually wraps.
    cache = ProgramCache()
    for name in benchmarks:
        for level in LEVELS:
            cache.get_benchmark(name, level)
    reset_telemetry(clear_env=True)
    print(f"Figure 5 grid: {len(specs)} cells, best of {args.repeats} "
          f"per mode (shared preloaded cache)")
    warm_seconds, _ = run_grid_once(cache, specs)  # warm-up, untimed mode
    print(f"warm-up pass         : {warm_seconds:8.2f} s")

    off_records = on_records = None
    off_times: List[float] = []
    on_times: List[float] = []
    ratios: List[float] = []
    events_written = 0
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as sink_root:
        for repeat in range(args.repeats):
            # Alternate the order each repeat so slow machine-load drift
            # (GC, thermal, noisy CI neighbours) cannot bias one mode.
            for mode in (("off", "on") if repeat % 2 == 0 else ("on", "off")):
                if mode == "off":
                    seconds, off_records = run_grid_once(cache, specs)
                    off_times.append(seconds)
                    continue
                sink = os.path.join(sink_root, f"pass-{repeat}")
                configure_telemetry(sink, role="main")
                try:
                    seconds, on_records = run_grid_once(cache, specs)
                finally:
                    reset_telemetry(clear_env=True)
                on_times.append(seconds)
                events_written = sum(
                    1 for path in glob.glob(os.path.join(sink,
                                                         "*.events.jsonl"))
                    for _line in open(path, encoding="utf-8"))
            ratios.append(off_times[-1] / on_times[-1])
            print(f"  pass {repeat}: off {off_times[-1]:6.2f} s, "
                  f"on {on_times[-1]:6.2f} s, ratio {ratios[-1]:.3f}x, "
                  f"{events_written} events")

    bitwise = off_records == on_records
    speedup = statistics.median(ratios)
    print(f"telemetry off        : best {min(off_times):8.2f} s")
    print(f"telemetry on         : best {min(on_times):8.2f} s "
          f"({events_written} events per pass)")
    print(f"paired off/on ratio  : {speedup:8.3f} x median "
          f"(overhead {100.0 * (1.0 / speedup - 1.0):+.1f}%)")
    print(f"records bitwise      : {bitwise}")

    record = {
        "grid": {"benchmarks": benchmarks, "levels": LEVELS,
                 "cells": len(specs), "repeats": args.repeats},
        "telemetry_off_seconds": min(off_times),
        "telemetry_on_seconds": min(on_times),
        "events_per_pass": events_written,
        "telemetry_overhead_speedup": speedup,
        "records_bitwise_identical": bitwise,
    }
    atomic_write_json(args.output, record)
    print(f"wrote {args.output}")

    if not bitwise:
        print("ERROR: traced records differ from untraced records")
        return 1
    if speedup < OVERHEAD_SPEEDUP_FLOOR:
        print(f"ERROR: off/on ratio {speedup:.3f}x below the "
              f"{OVERHEAD_SPEEDUP_FLOOR}x floor (telemetry overhead >2%)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
