"""Figure 6 bench: design-space enumeration and solver trajectories."""

from benchmarks.conftest import print_table
from repro.evaluation.figure6 import design_space, solver_trajectories


def test_figure6_int_matmult_space(benchmark):
    points = benchmark.pedantic(
        lambda: design_space("int_matmult", "O2", max_blocks=10),
        rounds=1, iterations=1)
    energies = [p.energy_j for p in points]
    print_table("Figure 6a: int_matmult enumerated space", [{
        "placements": len(points),
        "min_energy_uJ": min(energies) * 1e6,
        "max_energy_uJ": max(energies) * 1e6,
        "max_ram_bytes": max(p.ram_bytes for p in points),
    }], ["placements", "min_energy_uJ", "max_energy_uJ", "max_ram_bytes"])
    assert len(points) == 2 ** 10
    assert min(energies) < max(energies)


def test_figure6_solver_trajectories(benchmark):
    trajectories = benchmark.pedantic(
        lambda: solver_trajectories("int_matmult", "O2",
                                    ram_steps=[0, 64, 128, 256, 1024],
                                    time_steps=[1.0, 1.1, 1.3, 1.5]),
        rounds=1, iterations=1)
    print_table("Figure 6: constraining RAM (solid line)",
                trajectories["ram_sweep"],
                ["r_spare", "blocks", "ram_bytes", "energy_j", "time_ratio"])
    print_table("Figure 6: constraining time (dashed line)",
                trajectories["time_sweep"],
                ["x_limit", "blocks", "ram_bytes", "energy_j", "time_ratio"])
    ram_sweep = trajectories["ram_sweep"]
    # Relaxing the RAM budget can only reduce (or keep) the modelled energy.
    energies = [row["energy_j"] for row in ram_sweep]
    assert all(b <= a + 1e-12 for a, b in zip(energies, energies[1:]))


def test_figure6_fdct_space(benchmark):
    points = benchmark.pedantic(
        lambda: design_space("fdct", "O2", max_blocks=8), rounds=1, iterations=1)
    energies = [p.energy_j for p in points]
    print_table("Figure 6b: fdct enumerated space", [{
        "placements": len(points),
        "min_energy_uJ": min(energies) * 1e6,
        "max_energy_uJ": max(energies) * 1e6,
    }], ["placements", "min_energy_uJ", "max_energy_uJ"])
    assert len(points) == 2 ** 8
