"""Bench: how the flash-RAM frontier moves when the clock model changes.

Runs a Figure 5-style grid (three BEEBS kernels x four ``X_limit`` points)
under all three timing models (`repro.sim.pipeline`) and records the
placement frontier of each:

* **flat** — the paper's calibration: RAM placement trades time for
  energy, and the run must be *bitwise identical* when repeated (and to
  stores written before the timing axis existed — ``tests/test_pipeline.py``
  ``cmp``s the committed reference store; here we re-assert repeat-run
  identity);
* **pipelined** — flash wait states make RAM placement save time too:
  every grid cell's ``time_change`` must drop below its flat counterpart
  and the mean must go negative (the trade-off becomes a free lunch);
* **pipelined+icache** — the icache absorbs wait states and flash fetch
  energy, so the energy savings must collapse to a fraction of the
  uncached pipeline's.

Records everything to ``BENCH_pipeline.json`` for the CI regression gate
(``benchmarks/check_bench.py``).

Run with::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--output FILE]
"""

from __future__ import annotations

import argparse
import json
import time

from conftest import print_table

from repro.engine import ExperimentEngine, ProgramCache, atomic_write_json
from repro.explore import SweepSpec, mark_pareto, run_sweep

BENCHMARKS = ("crc32", "fdct", "2dfir")
X_LIMITS = (1.05, 1.1, 1.5, 2.0)
MODELS = ("flat", "pipelined", "pipelined+icache:16x16")

#: The icache must keep less than this fraction of the uncached pipeline's
#: mean energy savings for the "collapse" claim to hold.
COLLAPSE_CEILING = 0.5


def fresh_engine() -> ExperimentEngine:
    return ExperimentEngine(cache=ProgramCache(), max_workers=1)


def bench_grid() -> dict:
    sweep = SweepSpec(benchmarks=BENCHMARKS, x_limits=X_LIMITS,
                      timing_models=MODELS)
    start = time.perf_counter()
    records = mark_pareto(run_sweep(sweep, engine=fresh_engine()).records)
    sweep_s = time.perf_counter() - start

    by_model = {model: [r for r in records
                        if r.get("timing_model", "flat") == model]
                for model in MODELS}
    assert all(len(cells) == len(BENCHMARKS) * len(X_LIMITS)
               for cells in by_model.values())

    # Repeat the flat slice and require bitwise-identical records.
    flat_only = SweepSpec(benchmarks=BENCHMARKS, x_limits=X_LIMITS)
    first = json.dumps(run_sweep(flat_only, engine=fresh_engine()).records,
                       sort_keys=True)
    second = json.dumps(run_sweep(flat_only, engine=fresh_engine()).records,
                        sort_keys=True)
    flat_bitwise = first == second
    assert flat_bitwise, "repeated flat sweeps diverged"

    def mean(values):
        return sum(values) / len(values)

    summary_rows = []
    summaries = {}
    for model, cells in by_model.items():
        front = [r for r in cells if r["pareto"]]
        summaries[model] = {
            "cells": len(cells),
            "pareto_points": len(front),
            "mean_energy_change": mean([r["energy_change"] for r in cells]),
            "mean_time_change": mean([r["time_change"] for r in cells]),
            "min_time_change": min(r["time_change"] for r in cells),
            "mean_baseline_cycles": mean([r["baseline_cycles"] for r in cells]),
        }
        summary_rows.append({"model": model, **summaries[model]})
    print_table("frontier by timing model", summary_rows,
                ["model", "cells", "pareto_points", "mean_energy_change",
                 "mean_time_change", "min_time_change"])

    flat, pipe, cached = (summaries[m] for m in MODELS)

    # Wait states slow the baseline; the icache wins most of it back.
    assert pipe["mean_baseline_cycles"] > flat["mean_baseline_cycles"]
    assert cached["mean_baseline_cycles"] < pipe["mean_baseline_cycles"]

    # Frontier shift 1: under the pipelined clock, RAM placement buys time.
    per_cell_shift = all(
        p["time_change"] <= f["time_change"] + 1e-12
        for p, f in zip(sorted(by_model["pipelined"],
                               key=lambda r: (r["benchmark"], r["x_limit"])),
                        sorted(by_model["flat"],
                               key=lambda r: (r["benchmark"], r["x_limit"]))))
    pipelined_time_negative = pipe["mean_time_change"] < 0
    assert per_cell_shift, "a pipelined cell slowed down more than its flat twin"
    assert pipelined_time_negative, (
        f"pipelined mean time_change {pipe['mean_time_change']:+.3f} "
        f"did not go negative")
    assert pipe["mean_energy_change"] < flat["mean_energy_change"] < 0

    # Frontier shift 2: the icache collapses the energy savings.
    collapse_ratio = (abs(cached["mean_energy_change"])
                      / abs(pipe["mean_energy_change"]))
    assert collapse_ratio < COLLAPSE_CEILING, (
        f"icache kept {collapse_ratio:.0%} of the uncached energy savings "
        f"(ceiling {COLLAPSE_CEILING:.0%})")

    print(f"\nsweep: {len(records)} cells in {sweep_s:.2f}s")
    print(f"flat repeat-run bitwise identity: {flat_bitwise}")
    print(f"pipelined mean d-time {pipe['mean_time_change']:+.1%} "
          f"(flat {flat['mean_time_change']:+.1%}) — RAM placement buys time")
    print(f"icache keeps {collapse_ratio:.0%} of uncached energy savings "
          f"(ceiling {COLLAPSE_CEILING:.0%}) — the trade-off collapses")

    return {
        "benchmarks": list(BENCHMARKS),
        "x_limits": list(X_LIMITS),
        "sweep_s": sweep_s,
        "by_model": summaries,
        "flat_bitwise_identical": flat_bitwise,
        "pipelined_time_change_all_below_flat": per_cell_shift,
        "pipelined_mean_time_change_negative": pipelined_time_negative,
        "icache_energy_collapse_ratio": collapse_ratio,
    }


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default=None, metavar="FILE")
    args = parser.parse_args()

    record = bench_grid()

    if args.output:
        atomic_write_json(args.output, {"pipeline": record})
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
