"""Benchmark-harness helpers: every bench prints the rows/series it regenerates."""

from __future__ import annotations


def print_table(title, rows, columns):
    """Print a small aligned table of dict rows."""
    print(f"\n=== {title} ===")
    header = " ".join(f"{name:>18s}" for name in columns)
    print(header)
    for row in rows:
        cells = []
        for name in columns:
            value = row.get(name, "")
            if isinstance(value, float):
                cells.append(f"{value:18.3f}")
            else:
                cells.append(f"{str(value):>18s}")
        print(" ".join(cells))
