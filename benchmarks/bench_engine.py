"""Perf smoke bench: the cached+parallel engine vs the sequential seed path.

Runs the Figure 5 grid (all benchmarks, O2+Os, both frequency modes) twice:

* **seed path** — what the repository did before the engine refactor: compile
  each benchmark twice from source per cell, simulate with the interpreted
  (non-decode-once) simulator, strictly sequentially, no caching;
* **engine path** — one compile per (benchmark, level) through the
  content-addressed cache, memoised baselines, decode-once simulation, grid
  fanned out over a process pool.

Asserts that the two produce bitwise-identical SuiteRow records and records
wall-clock plus speedup to ``BENCH_engine.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--workers N] \
        [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import os
import time
from typing import List, Optional

from repro.beebs import BENCHMARK_NAMES, get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.engine import ExperimentEngine, ProgramCache, atomic_write_json
from repro.evaluation.figure5 import SuiteRow, suite_specs, evaluate_suite, summarize
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.sim import Simulator

LEVELS = ["O2", "Os"]
FREQUENCY_MODES = ("static", "profile")


# --------------------------------------------------------------------------- #
# The pre-engine implementation, reproduced verbatim as the baseline
# --------------------------------------------------------------------------- #
def _seed_compile(name: str, opt_level: str):
    benchmark = get_benchmark(name)
    options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
    return compile_source(benchmark.source, options)


def _seed_cell(spec) -> SuiteRow:
    """One grid cell exactly as the seed pipeline ran it (double compile,
    interpreted simulator, no caching)."""
    baseline_program = _seed_compile(spec.benchmark, spec.opt_level)
    baseline = Simulator(baseline_program, decode_once=False).run()

    optimized_program = _seed_compile(spec.benchmark, spec.opt_level)
    config = PlacementConfig(x_limit=spec.x_limit, r_spare=spec.r_spare,
                             frequency_mode=spec.frequency_mode,
                             solver=spec.solver)
    optimizer = FlashRAMOptimizer(optimized_program, config=config)
    profile = baseline.profile if spec.frequency_mode == "profile" else None
    solution = optimizer.optimize(profile=profile)
    optimized = Simulator(optimized_program, decode_once=False).run()
    assert optimized.return_value == baseline.return_value

    return SuiteRow(
        benchmark=spec.benchmark,
        opt_level=spec.opt_level,
        frequency_mode=spec.frequency_mode,
        energy_change=optimized.energy_j / baseline.energy_j - 1.0,
        time_change=optimized.cycles / baseline.cycles - 1.0,
        power_change=(optimized.average_power_w / baseline.average_power_w) - 1.0,
        ram_bytes=solution.estimate.ram_bytes if solution.estimate else 0,
        blocks_moved=len(solution.ram_blocks),
    )


def run_seed_path(benchmarks: List[str]) -> List[SuiteRow]:
    return [_seed_cell(spec)
            for spec in suite_specs(benchmarks, LEVELS, FREQUENCY_MODES)]


# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run a 4-benchmark subset instead of the suite")
    parser.add_argument("--workers", type=int, default=None,
                        help="engine process fan-out (default: cpu count)")
    parser.add_argument("--output", default="BENCH_engine.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    benchmarks = (["2dfir", "crc32", "fdct", "int_matmult"] if args.quick
                  else list(BENCHMARK_NAMES))
    workers = args.workers or os.cpu_count() or 1
    cells = len(benchmarks) * len(LEVELS) * len(FREQUENCY_MODES)
    print(f"Figure 5 grid: {len(benchmarks)} benchmarks x {LEVELS} x "
          f"{list(FREQUENCY_MODES)} = {cells} cells")

    t0 = time.perf_counter()
    seed_rows = run_seed_path(benchmarks)
    seed_seconds = time.perf_counter() - t0
    print(f"sequential seed path : {seed_seconds:8.2f} s")

    engine = ExperimentEngine(cache=ProgramCache(), max_workers=workers)
    t0 = time.perf_counter()
    engine_rows = evaluate_suite(benchmarks=benchmarks, levels=LEVELS,
                                 frequency_modes=FREQUENCY_MODES,
                                 engine=engine)
    engine_seconds = time.perf_counter() - t0
    print(f"cached+parallel engine ({workers} workers): {engine_seconds:8.2f} s")

    seed_records = [row.as_dict() for row in seed_rows]
    engine_records = [row.as_dict() for row in engine_rows]
    bitwise_equal = seed_records == engine_records
    speedup = seed_seconds / engine_seconds if engine_seconds else float("inf")
    print(f"speedup              : {speedup:8.2f} x")
    print(f"bitwise-equal rows   : {bitwise_equal}")

    record = {
        "grid": {"benchmarks": benchmarks, "levels": LEVELS,
                 "frequency_modes": list(FREQUENCY_MODES), "cells": cells},
        "workers": workers,
        "seed_seconds": seed_seconds,
        "engine_seconds": engine_seconds,
        "speedup_vs_sequential_seed": speedup,
        "bitwise_equal_rows": bitwise_equal,
        "summary": summarize(engine_rows),
    }
    atomic_write_json(args.output, record)
    print(f"wrote {args.output}")

    if not bitwise_equal:
        print("ERROR: engine rows differ from the seed path")
        return 1
    if speedup < 2.0:
        print("WARNING: speedup below the 2x target (single-core host?)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
