"""Perf smoke bench: trace-compiled superblocks + the persistent disk cache.

Two sections, both self-checking:

* **simulation** — the Figure 5 BEEBS grid (every benchmark x O2/Os),
  simulation wall-clock only, on shared precompiled programs: the
  decode-once path (``superblocks=False``, what PR 1 shipped) vs the
  superblocked path after its warm-up run.  Every row must be *bitwise*
  identical between the two (cycles, energy, profile, everything); the
  aggregate speedup must clear 1.5x.
* **disk_cache** — a cold :class:`ProgramCache` with a ``cache_dir``
  compiles each (benchmark, level) exactly once and persists it; a fresh
  instance (a second worker process, in effect) loads every key from disk
  with **zero** recompiles.  Records the warm-load-vs-compile speedup and
  checks a loaded program simulates bitwise-identically to a compiled one.

Run with::

    PYTHONPATH=src python benchmarks/bench_superblock.py [--quick] \
        [--repeats N] [--output BENCH_superblock.json]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from typing import List, Optional

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ProgramCache, atomic_write_json
from repro.sim import Simulator

LEVELS = ["O2", "Os"]
SPEEDUP_FLOOR = 1.5
#: Keys whose loaded-from-disk programs are re-simulated for bitwise parity
#: (a subset — simulation dominates the bench's runtime).
PARITY_SAMPLE = 3


def result_fields(result):
    """Every observable of one simulation, for bitwise comparison."""
    return (
        result.return_value,
        result.cycles,
        result.instructions,
        result.energy_j,
        result.time_s,
        dict(result.cycles_by_section),
        dict(result.profile.counts),
        dict(result.profile.cycles),
    )


def best_of(repeats: int, run) -> float:
    return min(min(run() for _ in range(repeats)), float("inf"))


def bench_simulation(benchmarks: List[str], repeats: int) -> dict:
    cache = ProgramCache()
    rows = {}
    decode_total = 0.0
    superblock_total = 0.0
    for name in benchmarks:
        for level in LEVELS:
            program = cache.get_benchmark(name, level)

            def time_decoded() -> float:
                t0 = time.perf_counter()
                nonlocal decoded
                decoded = Simulator(program, superblocks=False).run()
                return time.perf_counter() - t0

            def time_superblocked() -> float:
                t0 = time.perf_counter()
                nonlocal superblocked
                superblocked = Simulator(program).run()
                return time.perf_counter() - t0

            decoded = superblocked = None
            decode_seconds = best_of(repeats, time_decoded)
            time_superblocked()  # warm-up: compiles the superblocks
            superblock_seconds = best_of(repeats, time_superblocked)

            bitwise = result_fields(decoded) == result_fields(superblocked)
            decode_total += decode_seconds
            superblock_total += superblock_seconds
            rows[f"{name}/{level}"] = {
                "decode_once_seconds": decode_seconds,
                "superblock_seconds": superblock_seconds,
                "ratio": (decode_seconds / superblock_seconds
                          if superblock_seconds else float("inf")),
                "bitwise_identical": bitwise,
            }
            flag = "ok " if bitwise else "DIFF"
            print(f"  {flag} {name}/{level}: decode-once "
                  f"{decode_seconds * 1e3:7.2f} ms, superblocked "
                  f"{superblock_seconds * 1e3:7.2f} ms "
                  f"({rows[f'{name}/{level}']['ratio']:.2f}x)")

    speedup = (decode_total / superblock_total if superblock_total
               else float("inf"))
    return {
        "rows": rows,
        "decode_once_seconds_total": decode_total,
        "superblock_seconds_total": superblock_total,
        "speedup_over_decode_once": speedup,
    }


def bench_disk_cache(benchmarks: List[str]) -> dict:
    unique_keys = len(benchmarks) * len(LEVELS)
    with tempfile.TemporaryDirectory(prefix="bench-progcache-") as cache_dir:
        cold = ProgramCache(cache_dir=cache_dir)
        t0 = time.perf_counter()
        for name in benchmarks:
            for level in LEVELS:
                cold.get_benchmark(name, level)
        compile_seconds = time.perf_counter() - t0
        assert cold.stats.compiles == unique_keys, cold.stats.as_dict()
        assert cold.stats.disk_hits == 0, cold.stats.as_dict()

        # A fresh instance is a second worker process on the same machine:
        # every key must come off disk, none may recompile.
        warm = ProgramCache(cache_dir=cache_dir)
        t0 = time.perf_counter()
        for name in benchmarks:
            for level in LEVELS:
                warm.get_benchmark(name, level)
        warm_seconds = time.perf_counter() - t0
        assert warm.stats.compiles == 0, warm.stats.as_dict()
        assert warm.stats.disk_hits == unique_keys, warm.stats.as_dict()

        parity = True
        for name in benchmarks[:PARITY_SAMPLE]:
            compiled = Simulator(cold.get_benchmark(name, "O2"),
                                 superblocks=False).run()
            loaded = Simulator(warm.get_benchmark(name, "O2"),
                               superblocks=False).run()
            parity = parity and (result_fields(compiled)
                                 == result_fields(loaded))

    return {
        "unique_keys": unique_keys,
        "compile_seconds": compile_seconds,
        "warm_load_seconds": warm_seconds,
        "cold_compiles": unique_keys,
        "warm_compiles": 0,
        "warm_disk_hits": unique_keys,
        "speedup_warm_load_vs_compile": (compile_seconds / warm_seconds
                                         if warm_seconds else float("inf")),
        "bitwise_identical_loaded_programs": parity,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run a 4-benchmark subset instead of the suite")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per cell (best-of, default 3)")
    parser.add_argument("--output", default="BENCH_superblock.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    benchmarks = (["2dfir", "crc32", "fdct", "int_matmult"] if args.quick
                  else list(BENCHMARK_NAMES))
    print(f"Figure 5 simulation grid: {len(benchmarks)} benchmarks x "
          f"{LEVELS}, best of {args.repeats}")
    simulation = bench_simulation(benchmarks, args.repeats)
    print(f"decode-once total    : {simulation['decode_once_seconds_total']:8.2f} s")
    print(f"superblocked total   : {simulation['superblock_seconds_total']:8.2f} s")
    print(f"speedup              : {simulation['speedup_over_decode_once']:8.2f} x")

    print("disk cache: cold compile+persist, then warm load by a fresh instance")
    disk = bench_disk_cache(benchmarks)
    print(f"compile+persist      : {disk['compile_seconds']:8.2f} s "
          f"({disk['unique_keys']} keys)")
    print(f"warm load            : {disk['warm_load_seconds']:8.2f} s, "
          f"{disk['warm_disk_hits']} disk hits, 0 compiles")
    print(f"warm-vs-compile      : {disk['speedup_warm_load_vs_compile']:8.2f} x")

    record = {
        "grid": {"benchmarks": benchmarks, "levels": LEVELS},
        "simulation": simulation,
        "disk_cache": disk,
    }
    atomic_write_json(args.output, record)
    print(f"wrote {args.output}")

    broken = [key for key, row in simulation["rows"].items()
              if not row["bitwise_identical"]]
    if broken:
        print(f"ERROR: superblocked results differ from decode-once: {broken}")
        return 1
    if not disk["bitwise_identical_loaded_programs"]:
        print("ERROR: disk-loaded programs simulate differently")
        return 1
    if simulation["speedup_over_decode_once"] < SPEEDUP_FLOOR:
        print(f"ERROR: speedup {simulation['speedup_over_decode_once']:.2f}x "
              f"below the {SPEEDUP_FLOOR}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
