"""Perf smoke bench: warm-started dual-simplex branch and bound for the ILP.

Runs the Section 4.3 placement ILP over the full BEEBS grid (every kernel x
two X_limits) twice:

* **cold** — ``warm_start=False``: every branch-and-bound node re-solved
  from scratch by the dense two-phase tableau oracle (the pre-warm-start
  behaviour, bounds materialised as rows);
* **warm** — ``warm_start=True``: children re-solved by the dual simplex
  from their parent's optimal basis on the bounded-variable engine.

Asserts the two paths select **bitwise-identical RAM sets** on every grid
cell and that the warm path's LP-node throughput (branch-and-bound nodes
per second) is at least :data:`SPEEDUP_FLOOR` times the cold path's.
Records both to ``BENCH_ilp.json`` for the CI regression gate
(``benchmarks/check_bench.py``).

Run with::

    PYTHONPATH=src python benchmarks/bench_ilp.py [--output BENCH_ilp.json]
"""

from __future__ import annotations

import argparse
import time

from conftest import print_table

from repro.beebs import BENCHMARK_NAMES
from repro.engine import atomic_write_json, default_cache
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.placement.ilp import build_placement_ilp, solution_to_ram_set
from repro.placement.solvers.branch_and_bound import solve_ilp

X_LIMITS = (1.1, 1.5)
SPEEDUP_FLOOR = 2.0


def bench_grid(opt_level: str = "O2") -> dict:
    cells = []
    total = {"cold_s": 0.0, "warm_s": 0.0, "cold_nodes": 0, "warm_nodes": 0,
             "warm_solves": 0, "warm_pivots": 0}
    identical = True
    for name in BENCHMARK_NAMES:
        program = default_cache().get_benchmark_mutable(name, opt_level)
        optimizer = FlashRAMOptimizer(program, config=PlacementConfig())
        model = optimizer.build_cost_model()
        r_spare = optimizer.derive_r_spare()
        for x_limit in X_LIMITS:
            problem = build_placement_ilp(model, r_spare, x_limit)

            start = time.perf_counter()
            cold = solve_ilp(problem, warm_start=False)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = solve_ilp(problem, warm_start=True)
            warm_s = time.perf_counter() - start

            assert cold.values is not None and warm.values is not None, (
                f"{name} x={x_limit}: solver returned no values")
            cold_ram = frozenset(solution_to_ram_set(problem, cold.values))
            warm_ram = frozenset(solution_to_ram_set(problem, warm.values))
            same = cold_ram == warm_ram and cold.status == warm.status
            identical = identical and same
            assert same, (f"{name} x={x_limit}: warm RAM set diverged from "
                          f"cold ({sorted(cold_ram ^ warm_ram)})")

            total["cold_s"] += cold_s
            total["warm_s"] += warm_s
            total["cold_nodes"] += cold.nodes_explored
            total["warm_nodes"] += warm.nodes_explored
            total["warm_solves"] += warm.warm_solves
            total["warm_pivots"] += warm.lp_pivots
            cells.append({
                "benchmark": name,
                "x_limit": x_limit,
                "vars": problem.num_vars,
                "rows": int(problem.a_ub.shape[0]),
                "cold_ms": cold_s * 1e3,
                "warm_ms": warm_s * 1e3,
                "nodes": warm.nodes_explored,
                "warm_solves": warm.warm_solves,
                "ram_blocks": len(warm_ram),
            })

    cold_throughput = total["cold_nodes"] / total["cold_s"]
    warm_throughput = total["warm_nodes"] / total["warm_s"]
    speedup = warm_throughput / cold_throughput
    record = {
        "cells": len(cells),
        "cold_s": total["cold_s"],
        "warm_s": total["warm_s"],
        "cold_nodes": total["cold_nodes"],
        "warm_nodes": total["warm_nodes"],
        "warm_solves": total["warm_solves"],
        "warm_pivots": total["warm_pivots"],
        "cold_nodes_per_s": cold_throughput,
        "warm_nodes_per_s": warm_throughput,
        "node_throughput_speedup": speedup,
        "bitwise_identical_ram_sets": identical,
        "grid": cells,
    }
    print_table("placement ILP: cold two-phase vs warm-started dual simplex",
                cells, ["benchmark", "x_limit", "vars", "rows", "cold_ms",
                        "warm_ms", "nodes", "warm_solves", "ram_blocks"])
    print(f"\ncold: {total['cold_nodes']} nodes in {total['cold_s']:.2f}s "
          f"({cold_throughput:.1f} nodes/s)")
    print(f"warm: {total['warm_nodes']} nodes in {total['warm_s']:.2f}s "
          f"({warm_throughput:.1f} nodes/s)")
    print(f"LP-node throughput speedup: {speedup:.2f}x "
          f"(floor {SPEEDUP_FLOOR:.1f}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-start node throughput speedup {speedup:.2f}x is below the "
        f"{SPEEDUP_FLOOR}x floor")
    return record


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default=None, metavar="FILE")
    args = parser.parse_args()

    record = bench_grid()

    if args.output:
        atomic_write_json(args.output, {"ilp": record})
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
