"""Perf smoke bench: dynamic batch leasing vs static sharding, bitwise.

One straggler scenario, recorded to ``BENCH_distrib.json``: a two-worker
fleet in which one worker sleeps ``throttle`` seconds per cell (a
manufactured straggler).  Under the PR 3 static ``--shard i/N`` partition
the straggler would own half the cells, so its *sleep time alone* bounds a
static run from below at ``ceil(cells/2) * throttle``.  The distributed
coordinator instead leases batch-by-batch, so the fast worker absorbs
almost everything and the run finishes in roughly one straggler cell plus
the fast worker's compute.

Recorded ``speedup`` is ``static_lower_bound / dynamic_wall`` — dividing a
*measured* dynamic wall into an *analytic* sleep-only bound makes the ratio
conservative (a real static run also pays compute) and stable across runner
generations.  The bench also asserts the distributed store is **bitwise
identical** to a monolithic ``execute_sweep`` of the same spec.

Run with::

    PYTHONPATH=src python benchmarks/bench_distrib.py [--output BENCH_distrib.json]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from conftest import print_table

from repro.distrib import execute_sweep_distributed
from repro.engine import (
    ExperimentEngine,
    ProgramCache,
    ResultStore,
    atomic_write_json,
)
from repro.explore import SweepSpec, execute_sweep

SWEEP = SweepSpec(benchmarks=("crc32", "fdct"), x_limits=(1.1, 1.5),
                  flash_ram_ratios=(None, 2.5))
SPEEDUP_FLOOR = 1.3


def bench_straggler(root: Path) -> dict:
    # Monolithic reference: the bitwise baseline and the per-cell compute
    # cost the straggler margin self-calibrates against.
    mono = ResultStore(root / "mono")
    start = time.perf_counter()
    execute_sweep(SWEEP, store=mono,
                  engine=ExperimentEngine(cache=ProgramCache()),
                  max_workers=1)
    mono_s = time.perf_counter() - start
    per_cell = mono_s / SWEEP.size

    # throttle >> spawn + total compute, so the sleep-only static bound
    # dominates every overhead of the dynamic run.
    throttle = max(2.0, 4 * per_cell + 3.0)
    static_share = SWEEP.size - SWEEP.size // 2
    static_lower_bound = static_share * throttle

    dist = ResultStore(root / "dist")
    start = time.perf_counter()
    summary = execute_sweep_distributed(
        SWEEP, store=dist, workers=2, batch_size=1,
        worker_options=[{"name": "slow", "throttle": throttle},
                        {"name": "fast"}])
    dynamic_s = time.perf_counter() - start

    bitwise = (dist.path_for("sweep").read_bytes()
               == mono.path_for("sweep").read_bytes())
    assert bitwise, "distributed store differs from the monolithic run"
    speedup = static_lower_bound / dynamic_s
    counts = summary["distrib"]["cells_by_worker"]
    slow_cells = sum(count for worker, count in counts.items()
                     if worker.startswith("slow"))

    record = {
        "cells": SWEEP.size,
        "monolithic_s": mono_s,
        "throttle_s_per_cell": throttle,
        "static_lower_bound_s": static_lower_bound,
        "dynamic_s": dynamic_s,
        "speedup": speedup,
        "straggler_cells": slow_cells,
        "requeued_batches": summary["distrib"]["requeued_batches"],
        "bitwise_identical": bitwise,
    }
    print_table("dynamic leasing vs static sharding (1 straggler of 2 workers)",
                [record],
                ["cells", "throttle_s_per_cell", "static_lower_bound_s",
                 "dynamic_s", "speedup", "straggler_cells",
                 "bitwise_identical"])
    assert speedup >= SPEEDUP_FLOOR, (
        f"dynamic leasing speedup {speedup:.2f}x over the static sleep-only "
        f"bound is below the {SPEEDUP_FLOOR}x floor")
    return record


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default=None, metavar="FILE")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as root:
        record = bench_straggler(Path(root))

    if args.output:
        atomic_write_json(args.output, {"straggler": record})
        print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
