"""Ablation bench: ILP vs greedy vs exhaustive solver quality, and
estimated vs profiled block frequencies (the dots of Figure 5)."""

from benchmarks.conftest import print_table
from repro.codegen import CompileOptions, compile_source
from repro.beebs import get_benchmark
from repro.evaluation.pipeline import run_optimized_benchmark
from repro.placement import FlashRAMOptimizer, PlacementConfig


def _solver_energy(name, solver):
    benchmark = get_benchmark(name)
    program = compile_source(benchmark.source,
                             CompileOptions.for_level("O2", program_name=name))
    optimizer = FlashRAMOptimizer(program, config=PlacementConfig(solver=solver))
    solution = optimizer.select_blocks()
    return solution.estimate.energy_j, len(solution.ram_blocks)


def test_ablation_solver_quality(benchmark):
    def sweep():
        rows = []
        for name in ("int_matmult", "crc32", "fdct"):
            for solver in ("ilp", "greedy"):
                energy, blocks = _solver_energy(name, solver)
                rows.append({"benchmark": name, "solver": solver,
                             "model_energy_uJ": energy * 1e6, "blocks": blocks})
        return rows
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Ablation: solver quality (modelled energy)", rows,
                ["benchmark", "solver", "model_energy_uJ", "blocks"])
    by_key = {(r["benchmark"], r["solver"]): r["model_energy_uJ"] for r in rows}
    for name in ("int_matmult", "crc32", "fdct"):
        assert by_key[(name, "ilp")] <= by_key[(name, "greedy")] + 1e-9


def test_ablation_frequency_estimate_vs_profile(benchmark):
    def sweep():
        rows = []
        for name in ("int_matmult", "fdct"):
            for mode in ("static", "profile"):
                run = run_optimized_benchmark(name, "O2", frequency_mode=mode)
                rows.append({"benchmark": name, "frequency": mode,
                             "energy_change_%": 100 * run.energy_change,
                             "time_change_%": 100 * run.time_change})
        return rows
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Ablation: estimated vs profiled frequencies", rows,
                ["benchmark", "frequency", "energy_change_%", "time_change_%"])
    # The paper's observation: the static estimate is close to the profile.
    by_key = {(r["benchmark"], r["frequency"]): r["energy_change_%"] for r in rows}
    for name in ("int_matmult", "fdct"):
        assert abs(by_key[(name, "static")] - by_key[(name, "profile")]) < 15.0
