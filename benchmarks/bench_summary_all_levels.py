"""Section 6 headline-averages bench: a subset of benchmarks across O0-Os.

Reproduces the direction and rough magnitude of the paper's cross-level
averages (-7.7 % energy, -21.9 % power, +19.5 % time) on a representative
subset (full 10x5 sweep takes several minutes; run `evaluate_suite()` with no
arguments for the complete grid).
"""

from benchmarks.conftest import print_table
from repro.evaluation.figure5 import (
    PAPER_AVERAGE_ENERGY_CHANGE,
    PAPER_AVERAGE_POWER_CHANGE,
    PAPER_AVERAGE_TIME_CHANGE,
    evaluate_suite,
    summarize,
)

SUBSET = ["int_matmult", "fdct", "crc32", "2dfir"]
LEVELS = ["O0", "O1", "O2", "O3", "Os"]


def test_cross_level_averages(benchmark):
    rows = benchmark.pedantic(
        lambda: evaluate_suite(benchmarks=SUBSET, levels=LEVELS),
        rounds=1, iterations=1)
    print_table("Per-benchmark / per-level results",
                [row.as_dict() for row in rows],
                ["benchmark", "opt_level", "energy_change_percent",
                 "time_change_percent", "power_change_percent"])
    summary = summarize(rows)
    comparison = [{
        "metric": "avg energy %", "paper": 100 * PAPER_AVERAGE_ENERGY_CHANGE,
        "measured": 100 * summary["average_energy_change"]},
        {"metric": "avg power %", "paper": 100 * PAPER_AVERAGE_POWER_CHANGE,
         "measured": 100 * summary["average_power_change"]},
        {"metric": "avg time %", "paper": 100 * PAPER_AVERAGE_TIME_CHANGE,
         "measured": 100 * summary["average_time_change"]}]
    print_table("Section 6 averages: paper vs measured", comparison,
                ["metric", "paper", "measured"])
    assert summary["average_energy_change"] < 0
    assert summary["average_power_change"] < -0.05
