"""Figure 4 bench: instrumentation cost table, paper vs model."""

from benchmarks.conftest import print_table
from repro.transform import figure4_cost_table


def test_figure4_instrumentation_costs(benchmark):
    table = benchmark.pedantic(figure4_cost_table, rounds=1, iterations=1)
    rows = []
    for kind, entry in table.items():
        rows.append({
            "terminator": kind,
            "paper_cycles": entry["paper"].instrumented_cycles,
            "model_cycles": entry["model"].instrumented_cycles,
            "paper_bytes": entry["paper"].instrumented_bytes,
            "model_bytes": entry["model"].instrumented_bytes,
        })
    print_table("Figure 4: instrumented terminator costs", rows,
                ["terminator", "paper_cycles", "model_cycles",
                 "paper_bytes", "model_bytes"])
    assert all(r["model_cycles"] == r["paper_cycles"] for r in rows)
