"""Bench regression gate: compare fresh bench records against a baseline.

CI runs ``benchmarks/bench_engine.py`` / ``benchmarks/bench_explore.py`` and
then this script against the committed ``BENCH_*.json`` baselines.  Two kinds
of leaves are checked:

* every numeric leaf whose key path contains ``speedup`` must not regress by
  more than ``--max-regression`` (default 25 %) relative to the baseline —
  speedups are ratios measured on one machine, so they transfer across
  runner generations far better than absolute seconds;
* every boolean leaf whose key contains ``bitwise`` that is true in the
  baseline must still be true (the correctness half of each bench).

Exit code 1 on any failure.  Run with::

    python benchmarks/check_bench.py BENCH_engine.json fresh/BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterator, Tuple


def _leaves(payload, prefix: str = "") -> Iterator[Tuple[str, object]]:
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else key
            yield from _leaves(payload[key], path)
    else:
        yield prefix, payload


def _load(path: str) -> Dict[str, object]:
    with open(path, encoding="utf-8") as handle:
        return dict(_leaves(json.load(handle)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", help="freshly measured BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed fractional speedup loss (default 0.25)")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = []
    checked = 0

    for path, value in baseline.items():
        if isinstance(value, bool):
            if "bitwise" in path and value:
                checked += 1
                if fresh.get(path) is not True:
                    failures.append(f"{path}: baseline is true, fresh is "
                                    f"{fresh.get(path)!r}")
                else:
                    print(f"ok    {path}: true")
        elif isinstance(value, (int, float)) and "speedup" in path:
            checked += 1
            current = fresh.get(path)
            if not isinstance(current, (int, float)) or isinstance(current, bool):
                failures.append(f"{path}: missing from fresh record")
                continue
            floor = value * (1.0 - args.max_regression)
            status = "ok   " if current >= floor else "FAIL "
            print(f"{status} {path}: baseline {value:.3f}x, fresh "
                  f"{current:.3f}x (floor {floor:.3f}x)")
            if current < floor:
                failures.append(
                    f"{path}: speedup regressed to {current:.3f}x, more than "
                    f"{args.max_regression:.0%} below the baseline "
                    f"{value:.3f}x")

    if not checked:
        failures.append(f"{args.baseline}: no speedup/bitwise leaves found — "
                        f"wrong file?")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
