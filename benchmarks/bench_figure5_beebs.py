"""Figure 5 bench: % change in energy/time/power for the BEEBS suite at O2.

The full paper sweep covers O0-O3 and Os; `bench_summary_all_levels.py`
reproduces the cross-level averages on a subset, while this bench runs every
benchmark at O2 (the level Figure 5 highlights).
"""

from benchmarks.conftest import print_table
from repro.evaluation.figure5 import evaluate_suite, summarize


def test_figure5_suite_at_o2(benchmark):
    rows = benchmark.pedantic(
        lambda: evaluate_suite(levels=["O2"], frequency_modes=("static",)),
        rounds=1, iterations=1)
    print_table("Figure 5: BEEBS suite at O2 (static frequency estimate)",
                [row.as_dict() for row in rows],
                ["benchmark", "energy_change_percent", "time_change_percent",
                 "power_change_percent", "ram_bytes", "blocks_moved"])
    summary = summarize(rows)
    print_table("Figure 5 summary (O2)", [{
        "avg_energy_%": 100 * summary["average_energy_change"],
        "avg_time_%": 100 * summary["average_time_change"],
        "avg_power_%": 100 * summary["average_power_change"],
        "best_energy_%": 100 * summary["best_energy_change"],
        "best_power_%": 100 * summary["best_power_change"],
    }], ["avg_energy_%", "avg_time_%", "avg_power_%", "best_energy_%",
         "best_power_%"])
    # Directions must match the paper: energy and power drop, time rises.
    assert summary["average_energy_change"] < 0
    assert summary["average_power_change"] < 0
    assert summary["average_time_change"] >= 0
