"""Reproduce Figure 1: average power per instruction kind, flash vs RAM.

Run with::

    python examples/instruction_power.py
"""

from repro.evaluation.figure1 import instruction_power_rows


def main() -> None:
    rows = instruction_power_rows()
    print(f"{'instruction':>12s} {'flash mW':>9s} {'RAM mW':>8s} {'saving %':>9s}")
    for row in rows:
        print(f"{row['instruction']:>12s} {row['flash_power_mw']:9.2f} "
              f"{row['ram_power_mw']:8.2f} {row['ram_saving_percent']:9.1f}")
    print("\nNote the last row: a load whose data stays in flash saves almost "
          "nothing even when the code runs from RAM (the paper's Figure 1).")


if __name__ == "__main__":
    main()
