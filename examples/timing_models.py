"""Flat vs pipelined vs pipelined+icache timing for one BEEBS kernel.

The paper's flat cycle model makes flash and RAM instruction fetches cost
the same, so RAM placement is a pure energy-for-time trade.  The pipelined
timing models (``repro.sim.pipeline``) add flash wait states the fetch
stage can only partly hide, and optionally a direct-mapped icache in front
of flash.  This example runs the same placement experiment under all three
models and *asserts* the headline frontier shift:

* ``pipelined``: RAM placement removes fetch stalls, so it saves energy
  AND time (``time_change`` goes negative);
* ``pipelined+icache``: the cache absorbs the wait states and most of the
  flash fetch energy, so the RAM-placement energy savings collapse.

Run with::

    python examples/timing_models.py [benchmark]
"""

import sys

from repro.engine import ExperimentEngine
from repro.sim import TimingSpec

MODELS = ("flat", "pipelined", "pipelined+icache")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "crc32"
    engine = ExperimentEngine()

    print(f"=== {benchmark} (O2, X_limit 1.5): one placement, three clocks ===")
    print(f"{'timing model':>24s} {'base cycles':>12s} {'base uJ':>9s} "
          f"{'d-energy':>9s} {'d-time':>8s} {'RAM B':>6s}")
    runs = {}
    for model in MODELS:
        run = engine.run_optimized(benchmark, x_limit=1.5, timing_model=model)
        runs[model] = run
        print(f"{TimingSpec.parse(model).name:>24s} "
              f"{run.baseline.cycles:12d} "
              f"{run.baseline.energy_j * 1e6:9.2f} "
              f"{run.energy_change:+9.1%} {run.time_change:+8.1%} "
              f"{run.solution.estimate.ram_bytes:6d}")

    flat, pipe, cached = (runs[m] for m in MODELS)

    # The uncached pipeline pays flash wait states the flat model ignores...
    assert pipe.baseline.cycles > flat.baseline.cycles
    # ...and an icache wins most of them back.
    assert cached.baseline.cycles < pipe.baseline.cycles

    # Frontier shift 1: with wait states, RAM placement *speeds up* the
    # program — the trade-off of the paper's Figure 5 becomes a free lunch.
    assert pipe.time_change < 0 < flat.time_change or pipe.time_change < flat.time_change
    assert pipe.energy_change < flat.energy_change < 0

    # Frontier shift 2: an icache absorbs flash fetch energy, so the
    # energy argument for RAM placement (nearly) collapses.
    assert cached.energy_change > pipe.energy_change
    assert abs(cached.energy_change) < 0.5 * abs(pipe.energy_change)

    print("\nall frontier-shift assertions hold:")
    print("  pipelined       : RAM placement saves energy and time "
          f"({pipe.energy_change:+.1%} energy, {pipe.time_change:+.1%} time)")
    print("  pipelined+icache: savings collapse "
          f"({cached.energy_change:+.1%} energy vs {pipe.energy_change:+.1%} uncached)")


if __name__ == "__main__":
    main()
