"""Design-space exploration (paper Figure 6) for one BEEBS benchmark.

Enumerates every combination of the most significant basic blocks of
int_matmult, evaluates the cost model for each, and shows where the ILP
solver's choices land as the RAM budget (R_spare) and the allowed slowdown
(X_limit) are relaxed.  The final section runs a ``repro.explore`` sweep
(X_limit × flash/RAM energy ratio) through the experiment engine and prints
the benchmark's measured energy/time/RAM Pareto frontier.

Run with::

    python examples/design_space_exploration.py [benchmark]
"""

import sys
import tempfile

from repro.engine import ResultStore
from repro.evaluation.figure6 import design_space, solver_trajectories
from repro.explore import (
    SweepSpec,
    execute_sweep,
    mark_pareto,
    report_from_store,
    run_sweep,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "int_matmult"
    points = design_space(benchmark, "O2", max_blocks=10)

    energies = [p.energy_j for p in points]
    ratios = [p.time_ratio for p in points]
    print(f"=== {benchmark}: {len(points)} enumerated placements ===")
    print(f"energy range : {min(energies) * 1e6:.2f} .. {max(energies) * 1e6:.2f} uJ")
    print(f"time ratio   : {min(ratios):.3f} .. {max(ratios):.3f}")
    print(f"RAM usage    : 0 .. {max(p.ram_bytes for p in points)} bytes")

    trajectories = solver_trajectories(benchmark, "O2")
    print("\n--- constraining RAM (X_limit relaxed), the solid line of Figure 6 ---")
    print(f"{'R_spare':>8s} {'blocks':>7s} {'RAM B':>6s} {'energy uJ':>10s} {'time ratio':>11s}")
    for row in trajectories["ram_sweep"]:
        print(f"{row['r_spare']:8d} {row['blocks']:7d} {row['ram_bytes']:6d} "
              f"{row['energy_j'] * 1e6:10.2f} {row['time_ratio']:11.3f}")

    print("\n--- constraining time (RAM relaxed), the dashed line of Figure 6 ---")
    print(f"{'X_limit':>8s} {'blocks':>7s} {'RAM B':>6s} {'energy uJ':>10s} {'time ratio':>11s}")
    for row in trajectories["time_sweep"]:
        print(f"{row['x_limit']:8.2f} {row['blocks']:7d} {row['ram_bytes']:6d} "
              f"{row['energy_j'] * 1e6:10.2f} {row['time_ratio']:11.3f}")

    sweep = SweepSpec(benchmarks=(benchmark,),
                      x_limits=(1.05, 1.1, 1.2, 1.5),
                      flash_ram_ratios=(None, 1.25, 2.5))
    records = mark_pareto(run_sweep(sweep).records)
    print("\n--- measured sweep (X_limit x flash/RAM ratio), * = Pareto front ---")
    print(f"{'X_limit':>8s} {'ratio':>6s} {'RAM B':>6s} {'energy uJ':>10s} "
          f"{'time ratio':>11s} {'front':>6s}")
    for row in records:
        ratio = "cal." if row["flash_ram_ratio"] is None else f"{row['flash_ram_ratio']:.2f}"
        print(f"{row['x_limit']:8.2f} {ratio:>6s} {row['ram_bytes']:6d} "
              f"{row['energy_j'] * 1e6:10.2f} {row['time_ratio']:11.3f} "
              f"{'*' if row['pareto'] else '':>6s}")

    # The same sweep run as 2 persistent shards, merged, and reported from
    # the stored records alone — the shell equivalent is:
    #
    #   repro-eval explore --shard 0/2 --output shard-0   (and 1/2)
    #   repro-eval merge --stores shard-0 shard-1 --output merged
    #   repro-eval report --store merged --output figures
    with tempfile.TemporaryDirectory() as root:
        shards = []
        for index in range(2):
            store = ResultStore(f"{root}/shard-{index}")
            execute_sweep(sweep, store=store, shard=(index, 2))
            shards.append(store.root)
        merged = ResultStore(f"{root}/merged")
        stats = merged.merge("sweep", shards, require_disjoint=True)
        report = report_from_store(merged)
    print(f"\n--- shard -> merge -> report ({stats['records']} cells from "
          f"{stats['sources']} shards, no re-simulation) ---")
    for label, size in report["summary"]["frontier_sizes"].items():
        print(f"frontier of {label}: {size} points")


if __name__ == "__main__":
    main()
