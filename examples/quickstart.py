"""Quickstart: compile a small kernel, optimize its flash/RAM placement, compare.

Run with::

    python examples/quickstart.py
"""

from repro import CompileOptions, PlacementConfig, FlashRAMOptimizer, Simulator, compile_source

# The paper's motivating example (Figure 2): a hot multiply loop plus a clamp.
SOURCE = """
int fn(int k)
{
    int i;
    int x;
    x = 1;
    for (i = 0; i < 64; ++i) {
        x *= k;
    }
    if (x > 255) {
        x = 255;
    }
    return x;
}

int main(void)
{
    int total = 0;
    for (int k = 1; k <= 16; ++k) {
        total += fn(k) & 255;
    }
    return total;
}
"""


def main() -> None:
    # 1. Compile at -O2 for the Cortex-M3-like target (64 KB flash / 8 KB RAM).
    baseline_program = compile_source(SOURCE, CompileOptions.for_level("O2"))
    baseline = Simulator(baseline_program).run()

    # 2. Compile again and let the ILP-based optimizer move basic blocks to RAM.
    optimized_program = compile_source(SOURCE, CompileOptions.for_level("O2"))
    optimizer = FlashRAMOptimizer(optimized_program,
                                  config=PlacementConfig(x_limit=1.5))
    solution = optimizer.optimize()
    optimized = Simulator(optimized_program).run()

    # 3. Report.
    print("return value        :", baseline.signed_return_value,
          "(preserved)" if baseline.return_value == optimized.return_value else "(BROKEN)")
    print("blocks moved to RAM :", len(solution.ram_blocks),
          f"({solution.estimate.ram_bytes} bytes, budget {solution.r_spare})")
    for key in sorted(solution.ram_blocks):
        print("   ", key)
    print("instrumented blocks :", len(solution.instrumented))
    print(f"energy  : {baseline.energy_j * 1e6:8.3f} uJ -> {optimized.energy_j * 1e6:8.3f} uJ "
          f"({100 * (optimized.energy_j / baseline.energy_j - 1):+.1f} %)")
    print(f"time    : {baseline.cycles:8d} cy -> {optimized.cycles:8d} cy "
          f"({100 * (optimized.cycles / baseline.cycles - 1):+.1f} %)")
    print(f"power   : {baseline.average_power_mw:8.2f} mW -> {optimized.average_power_mw:8.2f} mW "
          f"({100 * (optimized.average_power_w / baseline.average_power_w - 1):+.1f} %)")


if __name__ == "__main__":
    main()
