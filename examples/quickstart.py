"""Quickstart: run a kernel through the experiment engine, then a small grid.

The engine compiles each program exactly once (content-addressed cache),
simulates the baseline on the shared pristine program, optimizes a private
copy, and can fan whole benchmark grids out over processes.

Run with::

    python examples/quickstart.py
"""

from repro import ExperimentEngine, ExperimentSpec


def main() -> None:
    engine = ExperimentEngine()

    # 1. One full experiment: compile once, simulate baseline, let the
    #    ILP-based optimizer move basic blocks to RAM, simulate the copy.
    run = engine.run_optimized("int_matmult", "O2", x_limit=1.5)
    baseline, optimized, solution = run.baseline, run.optimized, run.solution

    print("return value        :", baseline.signed_return_value,
          "(preserved)" if baseline.return_value == optimized.return_value else "(BROKEN)")
    print("blocks moved to RAM :", len(solution.ram_blocks),
          f"({solution.estimate.ram_bytes} bytes, budget {solution.r_spare})")
    for key in sorted(solution.ram_blocks):
        print("   ", key)
    print("instrumented blocks :", len(solution.instrumented))
    print(f"energy  : {baseline.energy_j * 1e6:8.3f} uJ -> {optimized.energy_j * 1e6:8.3f} uJ "
          f"({100 * run.energy_change:+.1f} %)")
    print(f"time    : {baseline.cycles:8d} cy -> {optimized.cycles:8d} cy "
          f"({100 * run.time_change:+.1f} %)")
    print(f"power   : {baseline.average_power_mw:8.2f} mW -> {optimized.average_power_mw:8.2f} mW "
          f"({100 * run.power_change:+.1f} %)")

    # 2. A small grid, fanned out over worker processes with deterministic
    #    (spec-order) results.  Re-running a benchmark at the same level hits
    #    the program cache instead of recompiling.
    specs = [ExperimentSpec(benchmark=name, opt_level=level)
             for name in ("fdct", "crc32") for level in ("O2", "Os")]
    print("\nbenchmark      level   energy %   time %   power %")
    for spec, grid_run in zip(specs, engine.run_grid(specs)):
        print(f"{spec.benchmark:14s} {spec.opt_level:5s} "
              f"{100 * grid_run.energy_change:9.1f} {100 * grid_run.time_change:8.1f} "
              f"{100 * grid_run.power_change:9.1f}")


if __name__ == "__main__":
    main()
