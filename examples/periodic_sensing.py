"""Periodic-sensing case study (paper Section 7) on the fdct benchmark.

The device wakes every T seconds, runs fdct, then sleeps at 3.5 mW.  The
example measures ke/kt with the simulator, applies Equations 10-12 and prints
the battery-life extension for a range of periods.

Run with::

    python examples/periodic_sensing.py
"""

from repro.evaluation.case_study import case_study_report
from repro.evaluation.figure9 import period_sweep


def main() -> None:
    report = case_study_report("fdct", "O2")

    paper = report["paper"]
    measured = report["measured"]
    print("=== Paper worked example (fdct, Section 7) ===")
    print(f"energy saved per period : {paper['energy_saved_j'] * 1e3:.2f} mJ "
          f"(paper quotes {paper['paper_energy_saved_j'] * 1e3:.2f} mJ)")
    print(f"battery life extension  : up to {100 * paper['battery_extension_best']:.0f} % "
          "(paper quotes up to 32 %)")

    print("\n=== Our measured pipeline (simulated fdct) ===")
    print(f"active energy E0        : {measured['active_energy_j'] * 1e6:.2f} uJ")
    print(f"active time TA          : {measured['active_time_s'] * 1e3:.3f} ms")
    print(f"ke = {measured['ke']:.3f}   kt = {measured['kt']:.3f}")
    print(f"energy saved per period : {measured['energy_saved_j'] * 1e6:.3f} uJ")
    print(f"battery life extension  : up to {100 * measured['battery_extension_best']:.0f} %")

    print("\n=== Energy vs period (Figure 9) ===")
    series = period_sweep(["fdct", "int_matmult", "2dfir"])
    print(f"{'benchmark':15s} {'T/TA':>6s} {'energy %':>9s} {'battery +%':>11s}")
    for name, rows in series.items():
        for row in rows:
            print(f"{name:15s} {row['period_multiple']:6.1f} "
                  f"{row['energy_percent']:9.1f} {100 * row['battery_extension']:11.1f}")


if __name__ == "__main__":
    main()
