"""Distributed sweep: coordinator + two workers, one killed mid-lease.

End-to-end demonstration of the ``repro.distrib`` subsystem — and the
in-process half of CI's distributed smoke job:

1. a :class:`SweepCoordinator` serves a 9-cell Figure 5/6-style sweep with
   small dynamic batches and journal checkpoints;
2. two spawned workers connect; one (the "victim") is SIGKILLed while it
   holds a lease, so its batch is re-queued and finished by the survivor;
3. the resulting store is compared **byte for byte** against a monolithic
   ``execute_sweep`` of the same spec (the script exits non-zero on any
   difference);
4. the Figure 5/6 report is rebuilt from the store alone — no
   re-simulation.

Run with::

    python examples/distributed_sweep.py [output-dir]
"""

import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

from repro.distrib import SweepCoordinator, worker_process_entry
from repro.engine import ExperimentEngine, ProgramCache, ResultStore
from repro.explore import SweepSpec, execute_sweep, report_from_store


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    sweep = SweepSpec(benchmarks=("crc32", "fdct", "2dfir"),
                      x_limits=(1.1, 1.5, 2.0))

    store = ResultStore(out / "distributed")
    coordinator = SweepCoordinator(sweep, store=store, batch_size=2,
                                   checkpoint_every=4, progress=True)
    coordinator.start()
    print(f"coordinator on 127.0.0.1:{coordinator.port} "
          f"({sweep.size} cells, batches of 2)")

    # Spawn, not fork: the coordinator runs server threads in this process.
    context = multiprocessing.get_context("spawn")

    def spawn(**kwargs):
        process = context.Process(
            target=worker_process_entry,
            args=(coordinator.host, coordinator.port),
            kwargs=kwargs, daemon=True)
        process.start()
        return process

    # The victim crawls (2 s of artificial work per cell) so there is a
    # wide-open window to kill it while it holds a lease.
    victim = spawn(name="victim", throttle=2.0)
    steady = spawn(name="steady")

    deadline = time.monotonic() + 120.0
    while coordinator.stats()["leases"] < 2:
        if time.monotonic() > deadline:
            print("workers never took their leases", file=sys.stderr)
            return 1
        time.sleep(0.05)
    victim.kill()
    print("killed the victim worker mid-lease; its batch will be re-leased")

    summary = coordinator.run(timeout=600.0)
    victim.join(timeout=10.0)
    steady.join(timeout=60.0)
    stats = summary["distrib"]
    print(f"sweep complete: {summary['computed']} cells via "
          f"{stats['workers']} workers, {stats['requeued_batches']} batches "
          f"re-leased, {stats['duplicate_records']} duplicate completions")
    print(f"store: {summary['path']}")

    # The whole point: the fleet's store is byte-identical to a monolithic
    # run of the same spec, dead worker and all.
    reference = ResultStore(out / "reference")
    execute_sweep(sweep, store=reference,
                  engine=ExperimentEngine(cache=ProgramCache()))
    identical = (store.path_for("sweep").read_bytes()
                 == reference.path_for("sweep").read_bytes())
    print(f"byte-identical to the monolithic reference: {identical}")
    if not identical:
        return 1

    report = report_from_store(store)
    print("\nFigure 5/6 report rebuilt from the stored records alone:")
    for label, size in report["summary"]["frontier_sizes"].items():
        print(f"  frontier of {label}: {size} points")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
